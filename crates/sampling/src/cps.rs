//! CPS and MR-CPS — cost-optimal multi-survey stratified sampling (§5.2).
//!
//! The Constraint Program Selector (Algorithm 2) answers an MSSD query
//! while minimizing the total survey cost, without biasing any survey's
//! sample:
//!
//! 1. compute a representative (non-optimal) answer `A` with MR-MQE and
//!    derive the stratum-selection frequencies `F(A_i, σ)`;
//! 2. compute the limits `L(σ)` with the Figure 4 MapReduce job;
//! 3. solve the Figure 3 program for the optimal sharing counts
//!    `X_τ(σ)` — exactly (IP, Algorithm CPS) or via the LP relaxation
//!    with floor rounding (MR-CPS);
//! 4. run MR-SQE on the *combined query* `Q′` (one stratum per relevant
//!    selection, frequency `f(σ) = Σ_τ X_τ(σ)`) and distribute the
//!    sampled tuples to the answers according to the `X_τ(σ)`;
//! 5. top up the rounding deficit with a *residual* MR-MQE phase that
//!    excludes already-selected individuals per query (§5.2.5.2).
//!
//! The Figure 3 program couples no two distinct selections σ, so it is
//! solved block-by-block (one small program per σ) by default; the joint
//! single-program formulation is available for cross-checking
//! (DESIGN.md, substitution 4).

use crate::audit::{escape_json, write_json_f64};
use crate::limits::try_stratum_selection_limits;
use crate::mqe::try_mr_mqe_on_splits;
use crate::obs::StratumCounters;
use crate::reservoir::Reservoir;
use crate::sst::{Sst, StratumSelection};
use crate::unified::{unified_sampler, IntermediateSample};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::time::Instant;
use stratmr_lp::{
    solve_ip_counted, solve_ip_traced_counted, solve_lp_counted, solve_lp_traced_counted,
    BranchBoundStats, LpError, Problem, Relation, SimplexStats, Solution,
};
use stratmr_mapreduce::{Cluster, CombineJob, Emitter, InputSplit, JobError, JobStats, TaskCtx};
use stratmr_population::{DistributedDataset, Individual};
use stratmr_query::{MssdAnswer, MssdQuery, SsdAnswer, SsdQuery, SurveySet};
use stratmr_telemetry::Registry;

/// Why a CPS run failed: the constraint program was unsolvable, or one
/// of the MapReduce phases could not complete under the fault model.
#[derive(Debug, Clone, PartialEq)]
pub enum CpsError {
    /// The Figure 3 program could not be solved.
    Lp(LpError),
    /// A MapReduce phase failed (retry exhaustion / no healthy machines).
    Job(JobError),
}

impl std::fmt::Display for CpsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CpsError::Lp(e) => write!(f, "constraint program failed: {e}"),
            CpsError::Job(e) => write!(f, "mapreduce phase failed: {e}"),
        }
    }
}

impl std::error::Error for CpsError {}

impl From<LpError> for CpsError {
    fn from(e: LpError) -> Self {
        CpsError::Lp(e)
    }
}

impl From<JobError> for CpsError {
    fn from(e: JobError) -> Self {
        CpsError::Job(e)
    }
}

/// Which solver backs step 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// Linear relaxation + floor rounding + residual phase (MR-CPS).
    Lp,
    /// Exact integer program via branch and bound (Algorithm CPS).
    Ip,
}

/// Configuration of a CPS run.
#[derive(Debug, Clone, Copy)]
pub struct CpsConfig {
    /// LP relaxation (MR-CPS) or exact IP (CPS).
    pub solver: SolverKind,
    /// Floor nudge `ε` compensating solver quantization: assignments are
    /// rounded to `⌊X_τ(σ) + ε⌋` (the paper uses 1e-4).
    pub epsilon: f64,
    /// Safety bound on residual top-up rounds (one round suffices
    /// analytically; see the module docs).
    pub max_residual_rounds: usize,
    /// Solve one joint program over all selections instead of one block
    /// per σ. Mathematically identical; exists for verification and the
    /// ablation bench.
    pub joint_formulation: bool,
}

impl Default for CpsConfig {
    fn default() -> Self {
        Self {
            solver: SolverKind::Lp,
            epsilon: 1e-4,
            max_residual_rounds: 4,
            joint_formulation: false,
        }
    }
}

impl CpsConfig {
    /// MR-CPS: the paper's scalable LP-based variant.
    pub fn mr_cps() -> Self {
        Self::default()
    }

    /// CPS with the exact IP solver.
    pub fn exact() -> Self {
        Self {
            solver: SolverKind::Ip,
            ..Self::default()
        }
    }
}

/// Time spent formulating and solving the constraint program (Figure 8).
#[derive(Debug, Clone, Copy, Default)]
pub struct CpsTimings {
    /// Seconds spent building the program(s).
    pub formulate_secs: f64,
    /// Seconds spent in the solver.
    pub solve_secs: f64,
}

/// Result of a CPS / MR-CPS run.
#[derive(Debug, Clone)]
pub struct CpsRun {
    /// The cost-optimized multi-survey answer `A*`.
    pub answer: MssdAnswer,
    /// Realized cost `C_A` of the answer under the query's cost model.
    pub cost: f64,
    /// Objective value of the solved program (`C_LP` or `C_IP`).
    pub solver_objective: f64,
    /// Individuals added by the residual phase (the §6.2.2 statistic —
    /// at most ~5.5% of the answer in the paper's runs).
    pub residual_selections: usize,
    /// Number of decision variables in the program.
    pub variables: usize,
    /// Number of constraints in the program.
    pub constraints: usize,
    /// Number of relevant stratum selections `|[[Q]]*|`.
    pub relevant_selections: usize,
    /// Constraint-program timings.
    pub timings: CpsTimings,
    /// Per-MapReduce-phase statistics, labeled.
    pub phase_stats: Vec<(String, JobStats)>,
}

/// The solved allocation for one stratum selection.
struct SigmaPlan {
    sel: StratumSelection,
    /// `(τ, ⌊X_τ(σ)⌋)` with positive counts, in ascending τ order.
    allocations: Vec<(SurveySet, u64)>,
    /// `f(σ) = Σ_τ ⌊X_τ(σ)⌋`.
    total: u64,
}

/// One relevant stratum selection σ in the EXPLAIN: its limit `L(σ)` and
/// the positive selection frequencies `F(A_i, σ)` per survey.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectionExplain {
    /// Rendered selection, e.g. `⟨s1,0,·⟩`.
    pub selection: String,
    /// The limit `L(σ)` from the Figure 4 counting job.
    pub limit: u64,
    /// `(survey, F(A_i, σ))` pairs with positive frequency, ascending.
    pub frequencies: Vec<(usize, u64)>,
}

/// One decision variable `X_τ(σ)` of a solved program.
#[derive(Debug, Clone, PartialEq)]
pub struct VariableExplain {
    /// The survey set τ, as ascending survey indexes.
    pub surveys: Vec<usize>,
    /// Objective coefficient `cost(τ)`.
    pub cost: f64,
    /// Solver value `X_τ(σ)` (fractional on the LP path).
    pub value: f64,
    /// The integral allocation after rounding (floor+ε on LP, round on
    /// IP) — what step 4 actually samples.
    pub allocation: u64,
}

/// One solved Figure 3 (sub)program: its variables, the constraints that
/// were binding at the optimum, and the search effort spent.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramExplain {
    /// The selection the block solves, or `"joint"` for the single-
    /// program formulation.
    pub selection: String,
    /// Optimal objective of this (sub)program.
    pub objective: f64,
    /// Objective of the (root) LP relaxation — equal to `objective` on
    /// the LP path, the branch-and-bound lower bound on IP.
    pub root_relaxation: f64,
    /// Simplex pivots spent (summed over relaxations on IP).
    pub pivots: u64,
    /// Branch-and-bound nodes expanded (0 on the LP path).
    pub nodes: u64,
    /// LP relaxations solved (1 on the LP path).
    pub lp_relaxations: u64,
    /// Indexes of constraints that hold with equality at the optimum.
    pub binding_constraints: Vec<usize>,
    /// Every decision variable with its value and rounded allocation.
    pub variables: Vec<VariableExplain>,
}

/// One edge of the sharing graph: how many sampled individuals serve
/// both surveys, and what the pairing saves against separate sampling.
#[derive(Debug, Clone, PartialEq)]
pub struct SharingEdge {
    /// The survey pair `(i, j)`, `i < j`.
    pub surveys: (usize, usize),
    /// Individuals in the answer whose survey set contains both.
    pub shared: u64,
    /// `cost({i, j})` under the query's cost model.
    pub pair_cost: f64,
    /// `cost({i}) + cost({j}) − cost({i, j})` — the per-individual
    /// saving realized by sharing (negative when sharing is penalized).
    pub savings: f64,
}

/// Cost attribution for one survey: each sampled individual's `cost(τ)`
/// split evenly across the surveys in its τ.
#[derive(Debug, Clone, PartialEq)]
pub struct SurveyCost {
    /// Survey index.
    pub survey: usize,
    /// Individuals in the survey's answer.
    pub individuals: usize,
    /// The survey's even-split share of the total cost.
    pub attributed_cost: f64,
}

/// One residual top-up round: the deficit entering the round and how
/// many selections it recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidualRoundExplain {
    /// Round index (0-based).
    pub round: usize,
    /// Total outstanding `(query, σ)` deficit entering the round.
    pub deficit: u64,
    /// Selections added by the round.
    pub added: u64,
}

/// The full EXPLAIN of a CPS / MR-CPS run: strata universe, solved
/// programs, sharing graph, cost attribution, residual breakdown and the
/// optimality gap. Rendered as deterministic sorted-key JSON
/// ([`PlanExplain::to_json`]) or an aligned text report
/// ([`PlanExplain::render_text`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanExplain {
    /// `"lp"` (MR-CPS) or `"ip"` (exact CPS).
    pub solver: String,
    /// Whether the joint single-program formulation was used.
    pub joint: bool,
    /// The relevant selections with limits and frequencies.
    pub selections: Vec<SelectionExplain>,
    /// The solved (sub)programs, in selection order (one entry named
    /// `"joint"` under the joint formulation).
    pub programs: Vec<ProgramExplain>,
    /// Sharing graph over the realized answer (pairs with `shared > 0`).
    pub sharing: Vec<SharingEdge>,
    /// Per-survey cost attribution over the realized answer.
    pub survey_costs: Vec<SurveyCost>,
    /// Residual-round breakdown.
    pub residual_rounds: Vec<ResidualRoundExplain>,
    /// Individuals added by the residual phase.
    pub residual_selections: usize,
    /// Objective of the solved program(s) — `C_LP` or `C_IP`.
    pub solver_objective: f64,
    /// Realized cost `C_A` of the answer.
    pub realized_cost: f64,
    /// Decision variables across the program(s).
    pub variables: usize,
    /// Constraints across the program(s).
    pub constraints: usize,
}

impl PlanExplain {
    /// Relative optimality gap `max(0, (C_A − C_sol) / C_A)`.
    ///
    /// Non-negative by construction (`C_LP ≤ C_IP ≤ C_A`); exactly zero
    /// when the realized cost matches the solver objective to within
    /// 1e-9, which the exact IP configuration always achieves.
    pub fn optimality_gap(&self) -> f64 {
        let diff = self.realized_cost - self.solver_objective;
        if diff.abs() <= 1e-9 {
            return 0.0;
        }
        (diff / self.realized_cost.max(1e-9)).max(0.0)
    }

    /// Render as deterministic JSON: alphabetical keys at every level,
    /// fixed six-decimal floats (`null` when non-finite) — byte-identical
    /// across runs at a fixed seed.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = write!(
            out,
            "  \"constraints\": {},\n  \"joint\": {},\n  \"optimality_gap\": ",
            self.constraints, self.joint
        );
        write_json_f64(&mut out, self.optimality_gap());
        out.push_str(",\n  \"programs\": [");
        for (i, p) in self.programs.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let binding: Vec<String> = p.binding_constraints.iter().map(usize::to_string).collect();
            let _ = write!(
                out,
                "    {{\"binding_constraints\": [{}], \"lp_relaxations\": {}, \"nodes\": {}, \"objective\": ",
                binding.join(", "),
                p.lp_relaxations,
                p.nodes
            );
            write_json_f64(&mut out, p.objective);
            let _ = write!(out, ", \"pivots\": {}, \"root_relaxation\": ", p.pivots);
            write_json_f64(&mut out, p.root_relaxation);
            let _ = write!(
                out,
                ", \"selection\": \"{}\", \"variables\": [",
                escape_json(&p.selection)
            );
            for (j, v) in p.variables.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{{\"allocation\": {}, \"cost\": ", v.allocation);
                write_json_f64(&mut out, v.cost);
                let surveys: Vec<String> = v.surveys.iter().map(usize::to_string).collect();
                let _ = write!(out, ", \"surveys\": [{}], \"value\": ", surveys.join(", "));
                write_json_f64(&mut out, v.value);
                out.push('}');
            }
            out.push_str("]}");
        }
        if !self.programs.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"realized_cost\": ");
        write_json_f64(&mut out, self.realized_cost);
        out.push_str(",\n  \"residual_rounds\": [");
        for (i, r) in self.residual_rounds.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"added\": {}, \"deficit\": {}, \"round\": {}}}",
                r.added, r.deficit, r.round
            );
        }
        let _ = write!(
            out,
            "],\n  \"residual_selections\": {},\n  \"selections\": [",
            self.residual_selections
        );
        for (i, s) in self.selections.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let freqs: Vec<String> = s
                .frequencies
                .iter()
                .map(|&(q, f)| format!("[{q}, {f}]"))
                .collect();
            let _ = write!(
                out,
                "    {{\"frequencies\": [{}], \"limit\": {}, \"selection\": \"{}\"}}",
                freqs.join(", "),
                s.limit,
                escape_json(&s.selection)
            );
        }
        if !self.selections.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"sharing\": [");
        for (i, e) in self.sharing.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"pair_cost\": ");
            write_json_f64(&mut out, e.pair_cost);
            out.push_str(", \"savings\": ");
            write_json_f64(&mut out, e.savings);
            let _ = write!(
                out,
                ", \"shared\": {}, \"surveys\": [{}, {}]}}",
                e.shared, e.surveys.0, e.surveys.1
            );
        }
        if !self.sharing.is_empty() {
            out.push_str("\n  ");
        }
        let _ = write!(
            out,
            "],\n  \"solver\": \"{}\",\n  \"solver_objective\": ",
            escape_json(&self.solver)
        );
        write_json_f64(&mut out, self.solver_objective);
        out.push_str(",\n  \"survey_costs\": [");
        for (i, c) in self.survey_costs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"attributed_cost\": ");
            write_json_f64(&mut out, c.attributed_cost);
            let _ = write!(
                out,
                ", \"individuals\": {}, \"survey\": {}}}",
                c.individuals, c.survey
            );
        }
        let _ = write!(out, "],\n  \"variables\": {}\n}}\n", self.variables);
        out
    }

    /// Render as an aligned text report (headline numbers, then one
    /// section per EXPLAIN dimension), mirroring the conventions of
    /// `Snapshot::render_text`.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "plan explain ({} solver, {} formulation):",
            self.solver,
            if self.joint { "joint" } else { "blockwise" }
        );
        let _ = writeln!(out, "  solver objective  {:>12.4}", self.solver_objective);
        let _ = writeln!(out, "  realized cost     {:>12.4}", self.realized_cost);
        let _ = writeln!(
            out,
            "  optimality gap    {:>11.3}%",
            self.optimality_gap() * 100.0
        );
        let _ = writeln!(
            out,
            "  program size      {} variables, {} constraints over {} selections",
            self.variables,
            self.constraints,
            self.selections.len()
        );
        if !self.selections.is_empty() {
            out.push_str("selections:\n");
            let w = self
                .selections
                .iter()
                .map(|s| s.selection.chars().count())
                .max()
                .unwrap_or(0);
            for s in &self.selections {
                let freqs: Vec<String> = s
                    .frequencies
                    .iter()
                    .map(|&(q, f)| format!("q{q}={f}"))
                    .collect();
                let pad = w.saturating_sub(s.selection.chars().count());
                let _ = writeln!(
                    out,
                    "  {}{}  limit {:>6}  F: {}",
                    s.selection,
                    " ".repeat(pad),
                    s.limit,
                    freqs.join(" ")
                );
            }
        }
        if !self.programs.is_empty() {
            out.push_str("programs:\n");
            for p in &self.programs {
                let binding: Vec<String> =
                    p.binding_constraints.iter().map(usize::to_string).collect();
                let _ = writeln!(
                    out,
                    "  {}  objective {:.4}  relaxation {:.4}  pivots {}  nodes {}  binding [{}]",
                    p.selection,
                    p.objective,
                    p.root_relaxation,
                    p.pivots,
                    p.nodes,
                    binding.join(",")
                );
            }
        }
        if !self.sharing.is_empty() {
            out.push_str("sharing:\n");
            for e in &self.sharing {
                let _ = writeln!(
                    out,
                    "  surveys ({}, {})  shared {:>6}  pair_cost {:.4}  savings {:.4}",
                    e.surveys.0, e.surveys.1, e.shared, e.pair_cost, e.savings
                );
            }
        }
        if !self.survey_costs.is_empty() {
            out.push_str("survey costs:\n");
            for c in &self.survey_costs {
                let _ = writeln!(
                    out,
                    "  q{}  {:>6} individuals  attributed {:.4}",
                    c.survey, c.individuals, c.attributed_cost
                );
            }
        }
        if !self.residual_rounds.is_empty() {
            out.push_str("residual rounds:\n");
            for r in &self.residual_rounds {
                let _ = writeln!(
                    out,
                    "  #{}  deficit {:>6}  added {:>6}",
                    r.round, r.deficit, r.added
                );
            }
        }
        out
    }
}

/// Run CPS / MR-CPS over a distributed dataset.
pub fn mr_cps(
    cluster: &Cluster,
    data: &DistributedDataset,
    mssd: &MssdQuery,
    config: CpsConfig,
    seed: u64,
) -> Result<CpsRun, LpError> {
    mr_cps_on_splits(
        cluster,
        &crate::input::to_input_splits(data),
        mssd,
        config,
        seed,
    )
}

/// Run CPS / MR-CPS on pre-built input splits.
pub fn mr_cps_on_splits(
    cluster: &Cluster,
    splits: &[InputSplit<Individual>],
    mssd: &MssdQuery,
    config: CpsConfig,
    seed: u64,
) -> Result<CpsRun, LpError> {
    lp_or_panic(mr_cps_inner(cluster, splits, mssd, config, seed, false)).map(|(run, _)| run)
}

/// Fault-aware [`mr_cps`]: scheduling failures in any MapReduce phase
/// come back as [`CpsError::Job`] instead of panicking.
pub fn try_mr_cps(
    cluster: &Cluster,
    data: &DistributedDataset,
    mssd: &MssdQuery,
    config: CpsConfig,
    seed: u64,
) -> Result<CpsRun, CpsError> {
    try_mr_cps_on_splits(
        cluster,
        &crate::input::to_input_splits(data),
        mssd,
        config,
        seed,
    )
}

/// Fault-aware [`mr_cps_on_splits`].
pub fn try_mr_cps_on_splits(
    cluster: &Cluster,
    splits: &[InputSplit<Individual>],
    mssd: &MssdQuery,
    config: CpsConfig,
    seed: u64,
) -> Result<CpsRun, CpsError> {
    mr_cps_inner(cluster, splits, mssd, config, seed, false).map(|(run, _)| run)
}

/// Preserve the legacy contract of the `Result<_, LpError>` entry
/// points: solver errors pass through, scheduling failures panic (they
/// only occur when a fault plan or failure injection is configured).
fn lp_or_panic<T>(r: Result<T, CpsError>) -> Result<T, LpError> {
    match r {
        Ok(v) => Ok(v),
        Err(CpsError::Lp(e)) => Err(e),
        Err(CpsError::Job(e)) => panic!("mapreduce job failed: {e}"),
    }
}

/// Run CPS / MR-CPS over a distributed dataset, also capturing a full
/// [`PlanExplain`] — the strata universe, the solved programs, the
/// sharing graph, cost attribution and the residual-round breakdown.
pub fn mr_cps_explain(
    cluster: &Cluster,
    data: &DistributedDataset,
    mssd: &MssdQuery,
    config: CpsConfig,
    seed: u64,
) -> Result<(CpsRun, PlanExplain), LpError> {
    mr_cps_explain_on_splits(
        cluster,
        &crate::input::to_input_splits(data),
        mssd,
        config,
        seed,
    )
}

/// [`mr_cps_explain`] on pre-built input splits.
pub fn mr_cps_explain_on_splits(
    cluster: &Cluster,
    splits: &[InputSplit<Individual>],
    mssd: &MssdQuery,
    config: CpsConfig,
    seed: u64,
) -> Result<(CpsRun, PlanExplain), LpError> {
    lp_or_panic(mr_cps_inner(cluster, splits, mssd, config, seed, true))
        .map(|(run, explain)| (run, explain.expect("explain capture was requested")))
}

/// The shared CPS pipeline; `capture` switches the EXPLAIN bookkeeping
/// on. Capturing changes no decision the pipeline makes — answers are
/// byte-identical with and without it.
fn mr_cps_inner(
    cluster: &Cluster,
    splits: &[InputSplit<Individual>],
    mssd: &MssdQuery,
    config: CpsConfig,
    seed: u64,
    capture: bool,
) -> Result<(CpsRun, Option<PlanExplain>), CpsError> {
    let queries = mssd.queries();
    let n = queries.len();
    let mut phase_stats = Vec::new();
    let tel = cluster.telemetry();
    let _run_span = tel.map(|t| t.span("cps.run"));
    if let Some(t) = tel {
        t.counter("cps.runs").inc();
    }

    // ---- step 1: representative first-phase answer (Line 1) ------------
    let initial = {
        let _s = tel.map(|t| t.span("initial_mqe"));
        try_mr_mqe_on_splits(
            &cluster.named("cps/initial-mqe"),
            splits,
            queries,
            None,
            seed.wrapping_add(1),
        )?
    };
    phase_stats.push(("initial MR-MQE".to_string(), initial.stats.clone()));

    // F(A_i, σ) via one SST per answer (§5.2.5.1)
    let freq: Vec<HashMap<StratumSelection, u64>> = (0..n)
        .map(|i| {
            Sst::from_tuples(initial.answer.answer(i).iter(), queries)
                .iter()
                .collect()
        })
        .collect();

    // [[Q]]* — the relevant selections
    let mut relevant: Vec<StratumSelection> = freq
        .iter()
        .flat_map(|f| f.keys().cloned())
        .collect::<HashSet<_>>()
        .into_iter()
        .collect();
    relevant.sort(); // deterministic block order

    // ---- step 2: limits L(σ) (Figure 4) --------------------------------
    let relevant_set: HashSet<StratumSelection> = relevant.iter().cloned().collect();
    let (limits, limit_stats) = {
        let _s = tel.map(|t| t.span("limits"));
        try_stratum_selection_limits(
            &cluster.named("cps/limits"),
            splits,
            queries,
            Some(&relevant_set),
            seed.wrapping_add(2),
        )?
    };
    phase_stats.push(("selection limits".to_string(), limit_stats));

    // EXPLAIN: the strata universe — every relevant σ with its limit and
    // per-survey selection frequencies
    let selections_explain: Vec<SelectionExplain> = if capture {
        relevant
            .iter()
            .map(|sel| SelectionExplain {
                selection: sel.to_string(),
                limit: limits.get(sel).copied().unwrap_or(0),
                frequencies: (0..n)
                    .filter_map(|i| {
                        let f = freq[i].get(sel).copied().unwrap_or(0);
                        (f > 0).then_some((i, f))
                    })
                    .collect(),
            })
            .collect()
    } else {
        Vec::new()
    };

    // ---- step 3: formulate & solve the Figure 3 program ----------------
    let mut timings = CpsTimings::default();
    let mut variables = 0usize;
    let mut constraints = 0usize;
    let mut solver_objective = 0.0f64;
    let mut programs: Vec<ProgramExplain> = Vec::new();
    let plans: Vec<SigmaPlan> = {
        let _s = tel.map(|t| t.span("solve"));
        let explain = capture.then_some(&mut programs);
        if config.joint_formulation {
            solve_joint(
                &relevant,
                &freq,
                &limits,
                mssd,
                config,
                tel,
                &mut timings,
                &mut variables,
                &mut constraints,
                &mut solver_objective,
                explain,
            )?
        } else {
            solve_blockwise(
                &relevant,
                &freq,
                &limits,
                mssd,
                config,
                tel,
                &mut timings,
                &mut variables,
                &mut constraints,
                &mut solver_objective,
                explain,
            )?
        }
    };
    if let Some(t) = tel {
        t.counter("cps.relevant_selections")
            .add(relevant.len() as u64);
        t.counter("cps.program.variables").add(variables as u64);
        t.counter("cps.program.constraints").add(constraints as u64);
    }

    // ---- step 4: combined query Q′ + distribution (Lines 4-15) ---------
    // Q′ has one stratum per relevant σ with a positive allocation; its
    // condition ϕ(σ) selects exactly the tuples with σ(t) = σ, so the
    // job matches tuples by computing σ(t) once and indexing — the
    // MapReduce program is MR-SQE on Q′, with the formula evaluation
    // strength-reduced to a selection lookup.
    let active: Vec<&SigmaPlan> = plans.iter().filter(|p| p.total > 0).collect();
    let sigma_index: HashMap<StratumSelection, usize> = active
        .iter()
        .enumerate()
        .map(|(k, p)| (p.sel.clone(), k))
        .collect();
    let combined_freqs: Vec<usize> = active.iter().map(|p| p.total as usize).collect();
    let combined_counters =
        tel.map(|t| StratumCounters::per_stratum(t, "cps.combined", active.len()));
    if let Some(c) = &combined_counters {
        for (k, &f) in combined_freqs.iter().enumerate() {
            c.request(k, f as u64);
        }
    }
    let combined_job = CombinedSqeJob {
        queries,
        index: &sigma_index,
        freqs: &combined_freqs,
        counters: combined_counters,
    };
    let combined = {
        let _s = tel.map(|t| t.span("combined_sqe"));
        cluster.named("cps/combined-sqe").try_run_with_combiner(
            &combined_job,
            splits,
            seed.wrapping_add(3),
        )?
    };
    phase_stats.push(("combined MR-SQE".to_string(), combined.stats.clone()));
    let mut pools: Vec<Vec<Individual>> = vec![Vec::new(); active.len()];
    for (k, sample) in combined.results {
        pools[k] = sample;
    }

    let mut star: Vec<SsdAnswer> = queries.iter().map(|q| SsdAnswer::empty(q.len())).collect();
    // per (i, σ): how many tuples A*_i already holds for σ
    let mut assigned: Vec<HashMap<StratumSelection, u64>> = vec![HashMap::new(); n];
    for (plan, pool) in active.iter().zip(&mut pools) {
        for &(tau, count) in &plan.allocations {
            for _ in 0..count {
                let Some(t) = pool.pop() else { break };
                for i in tau.iter() {
                    let stratum = plan.sel.stratum_of(i).expect("τ ⊆ I(σ)");
                    star[i].stratum_mut(stratum).push(t.clone());
                    *assigned[i].entry(plan.sel.clone()).or_default() += 1;
                }
            }
        }
    }

    // ---- step 5: residual top-up (§5.2.5.2) -----------------------------
    // Semantically another MSSD (MR-MQE) phase over the residual
    // frequencies, keyed by (query, σ) with already-selected individuals
    // excluded per query; like the combined job, tuples are matched by
    // σ(t) lookup instead of re-evaluating ϕ(σ).
    let mut residual_selections = 0usize;
    let mut residual_rounds: Vec<ResidualRoundExplain> = Vec::new();
    for round in 0..config.max_residual_rounds {
        // deficits per (i, σ)
        let mut needed: HashMap<(usize, StratumSelection), usize> = HashMap::new();
        for i in 0..n {
            for sel in &relevant {
                let want = freq[i].get(sel).copied().unwrap_or(0);
                let have = assigned[i].get(sel).copied().unwrap_or(0);
                if want > have {
                    needed.insert((i, sel.clone()), (want - have) as usize);
                }
            }
        }
        if needed.is_empty() {
            break;
        }
        // exclude already-selected individuals, per query
        let exclusions: Vec<HashSet<u64>> = star
            .iter()
            .map(|a| a.iter().map(|t| t.id).collect())
            .collect();
        let deficit: u64 = needed.values().map(|&v| v as u64).sum();
        let residual_counters = tel.map(|t| StratumCounters::aggregate(t, "cps.residual"));
        if let Some(c) = &residual_counters {
            c.request(0, deficit);
        }
        let residual_job = ResidualMqeJob {
            queries,
            needed: &needed,
            exclusions: &exclusions,
            counters: residual_counters,
        };
        let residual = {
            let _s = tel.map(|t| t.span("residual"));
            cluster
                .named(&format!("cps/residual#{round}"))
                .try_run_with_combiner(&residual_job, splits, seed.wrapping_add(4 + round as u64))?
        };
        if let Some(t) = tel {
            t.counter("cps.residual.rounds").inc();
        }
        phase_stats.push((format!("residual MR-MQE #{round}"), residual.stats.clone()));
        let mut added_this_round = 0usize;
        for ((i, sel), tuples) in residual.results {
            let stratum = sel.stratum_of(i).expect("deficit implies i ∈ I(σ)");
            for t in tuples {
                star[i].stratum_mut(stratum).push(t);
                *assigned[i].entry(sel.clone()).or_default() += 1;
                added_this_round += 1;
            }
        }
        residual_selections += added_this_round;
        if capture {
            residual_rounds.push(ResidualRoundExplain {
                round,
                deficit,
                added: added_this_round as u64,
            });
        }
        if added_this_round == 0 {
            // pool dry (cannot happen when the limits are consistent);
            // avoid spinning
            break;
        }
    }

    if let Some(t) = tel {
        t.counter("cps.residual.selections")
            .add(residual_selections as u64);
    }
    let answer = MssdAnswer::new(star);
    let cost = answer.cost(mssd.costs());
    let explain = if capture {
        let costs = mssd.costs();
        // sharing graph + cost attribution from the realized answer,
        // walked in sorted-id order so f64 sums are byte-deterministic
        let sets = answer.survey_sets();
        let mut ids: Vec<u64> = sets.keys().copied().collect();
        ids.sort_unstable();
        let mut sharing = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let shared = ids
                    .iter()
                    .filter(|&&id| sets[&id].contains(i) && sets[&id].contains(j))
                    .count() as u64;
                if shared == 0 {
                    continue;
                }
                let pair = SurveySet::from_iter([i, j]);
                let apart =
                    costs.cost(SurveySet::singleton(i)) + costs.cost(SurveySet::singleton(j));
                sharing.push(SharingEdge {
                    surveys: (i, j),
                    shared,
                    pair_cost: costs.cost(pair),
                    savings: apart - costs.cost(pair),
                });
            }
        }
        let mut attributed = vec![0.0f64; n];
        for id in &ids {
            let tau = sets[id];
            let share = costs.cost(tau) / tau.len() as f64;
            for i in tau.iter() {
                attributed[i] += share;
            }
        }
        let survey_costs = (0..n)
            .map(|i| SurveyCost {
                survey: i,
                individuals: answer.answer(i).len(),
                attributed_cost: attributed[i],
            })
            .collect();
        Some(PlanExplain {
            solver: match config.solver {
                SolverKind::Lp => "lp",
                SolverKind::Ip => "ip",
            }
            .to_string(),
            joint: config.joint_formulation,
            selections: selections_explain,
            programs,
            sharing,
            survey_costs,
            residual_rounds,
            residual_selections,
            solver_objective,
            realized_cost: cost,
            variables,
            constraints,
        })
    } else {
        None
    };
    Ok((
        CpsRun {
            answer,
            cost,
            solver_objective,
            residual_selections,
            variables,
            constraints,
            relevant_selections: relevant.len(),
            timings,
            phase_stats,
        },
        explain,
    ))
}

/// MR-SQE on the combined query Q′, with stratum matching done by
/// computing `σ(t)` and indexing into the relevant selections (each Q′
/// stratum's condition `ϕ(σ)` holds exactly on tuples with `σ(t) = σ`).
struct CombinedSqeJob<'a> {
    queries: &'a [SsdQuery],
    index: &'a HashMap<StratumSelection, usize>,
    freqs: &'a [usize],
    counters: Option<StratumCounters>,
}

impl CombineJob for CombinedSqeJob<'_> {
    type Input = Individual;
    type Key = usize;
    type MapOut = Individual;
    type CombOut = IntermediateSample<Individual>;
    type ReduceOut = Vec<Individual>;

    fn map(&self, _ctx: &TaskCtx, t: &Individual, out: &mut Emitter<usize, Individual>) {
        let sel = StratumSelection::of(t, self.queries);
        if let Some(&k) = self.index.get(&sel) {
            if let Some(c) = &self.counters {
                c.candidate(k);
            }
            out.emit(k, t.clone());
        }
    }

    fn combine(
        &self,
        ctx: &TaskCtx,
        key: &usize,
        values: &mut dyn Iterator<Item = Individual>,
    ) -> IntermediateSample<Individual> {
        let mut rng = ChaCha8Rng::seed_from_u64(ctx.seed);
        let mut reservoir = Reservoir::new(self.freqs[*key]);
        for t in values {
            reservoir.observe(t, &mut rng);
        }
        let (sample, seen) = reservoir.into_parts();
        IntermediateSample::new(sample, seen)
    }

    fn reduce(
        &self,
        ctx: &TaskCtx,
        key: &usize,
        values: Vec<IntermediateSample<Individual>>,
    ) -> Vec<Individual> {
        let mut rng = ChaCha8Rng::seed_from_u64(ctx.seed);
        let seen: u64 = values.iter().map(|s| s.drawn_from as u64).sum();
        let sample = unified_sampler(values, self.freqs[*key], &mut rng);
        if let Some(c) = &self.counters {
            c.reduced(*key, sample.len() as u64, seen);
        }
        sample
    }

    fn input_bytes(&self, t: &Individual) -> u64 {
        t.payload_bytes as u64
    }

    fn comb_bytes(&self, _key: &usize, s: &IntermediateSample<Individual>) -> u64 {
        s.sample.iter().map(crate::input::wire_bytes).sum::<u64>() + 16
    }
}

/// The residual MR-MQE phase, keyed by `(query, σ)` with per-query
/// exclusion of already-selected individuals.
struct ResidualMqeJob<'a> {
    queries: &'a [SsdQuery],
    needed: &'a HashMap<(usize, StratumSelection), usize>,
    exclusions: &'a [HashSet<u64>],
    /// Aggregate `cps.residual.*` counters — the key space is the
    /// dynamic `(query, σ)` deficits, so no per-stratum breakdown.
    counters: Option<StratumCounters>,
}

impl CombineJob for ResidualMqeJob<'_> {
    type Input = Individual;
    type Key = (usize, StratumSelection);
    type MapOut = Individual;
    type CombOut = IntermediateSample<Individual>;
    type ReduceOut = Vec<Individual>;

    fn map(
        &self,
        _ctx: &TaskCtx,
        t: &Individual,
        out: &mut Emitter<(usize, StratumSelection), Individual>,
    ) {
        let sel = StratumSelection::of(t, self.queries);
        for i in sel.survey_indexes().iter() {
            if self.exclusions[i].contains(&t.id) {
                continue;
            }
            let key = (i, sel.clone());
            if self.needed.contains_key(&key) {
                if let Some(c) = &self.counters {
                    c.candidate(0);
                }
                out.emit(key, t.clone());
            }
        }
    }

    fn combine(
        &self,
        ctx: &TaskCtx,
        key: &(usize, StratumSelection),
        values: &mut dyn Iterator<Item = Individual>,
    ) -> IntermediateSample<Individual> {
        let mut rng = ChaCha8Rng::seed_from_u64(ctx.seed);
        let mut reservoir = Reservoir::new(self.needed[key]);
        for t in values {
            reservoir.observe(t, &mut rng);
        }
        let (sample, seen) = reservoir.into_parts();
        IntermediateSample::new(sample, seen)
    }

    fn reduce(
        &self,
        ctx: &TaskCtx,
        key: &(usize, StratumSelection),
        values: Vec<IntermediateSample<Individual>>,
    ) -> Vec<Individual> {
        let mut rng = ChaCha8Rng::seed_from_u64(ctx.seed);
        let seen: u64 = values.iter().map(|s| s.drawn_from as u64).sum();
        let sample = unified_sampler(values, self.needed[key], &mut rng);
        if let Some(c) = &self.counters {
            c.reduced(0, sample.len() as u64, seen);
        }
        sample
    }

    fn input_bytes(&self, t: &Individual) -> u64 {
        t.payload_bytes as u64
    }

    fn comb_bytes(
        &self,
        _key: &(usize, StratumSelection),
        s: &IntermediateSample<Individual>,
    ) -> u64 {
        s.sample.iter().map(crate::input::wire_bytes).sum::<u64>() + 16
    }
}

/// The queries that actually sampled σ: `{i ∈ I(σ) : F(A_i, σ) > 0}`.
///
/// For any `i` with `F(A_i, σ) = 0`, the equality constraint forces every
/// `X_τ(σ)` with `i ∈ τ` to zero, so restricting the variables to subsets
/// of this set leaves the optimum unchanged (the same reasoning the paper
/// uses to prune redundant selections in §5.2.5.1, applied per variable).
fn active_surveys(sel: &StratumSelection, freq: &[HashMap<StratumSelection, u64>]) -> SurveySet {
    SurveySet::from_iter(
        sel.survey_indexes()
            .iter()
            .filter(|&i| freq[i].get(sel).copied().unwrap_or(0) > 0),
    )
}

/// Enumerate the non-empty subsets of a survey set in ascending bitmask
/// order.
fn taus_of(active: SurveySet) -> Vec<SurveySet> {
    let mut taus: Vec<SurveySet> = active.nonempty_subsets().collect();
    taus.sort();
    taus
}

/// Floor with the paper's ε nudge.
fn floor_eps(x: f64, eps: f64) -> u64 {
    (x + eps).floor().max(0.0) as u64
}

/// Search effort behind one solved (sub)program, normalized across the
/// LP and IP backends for the plan EXPLAIN.
#[derive(Debug, Clone, Copy, Default)]
struct SolveEffort {
    pivots: u64,
    nodes: u64,
    lp_relaxations: u64,
    /// Objective of the (root) LP relaxation — equals the objective
    /// itself on the LP path, the branch-and-bound lower bound on IP.
    root_relaxation: f64,
}

fn lp_effort((solution, stats): (Solution, SimplexStats)) -> (Solution, SolveEffort) {
    let effort = SolveEffort {
        pivots: stats.pivots(),
        nodes: 0,
        lp_relaxations: 1,
        root_relaxation: solution.objective,
    };
    (solution, effort)
}

fn ip_effort((solution, stats): (Solution, BranchBoundStats)) -> (Solution, SolveEffort) {
    let effort = SolveEffort {
        pivots: stats.pivots,
        nodes: stats.nodes,
        lp_relaxations: stats.lp_relaxations,
        root_relaxation: stats.root_relaxation,
    };
    (solution, effort)
}

/// One Figure 3 (sub)program solve, routed through the traced solver
/// variants when the cluster carries a telemetry registry (pivot, node
/// and relaxation counters land under `lp.*` / `ip.*`). Always returns
/// the search effort so EXPLAIN capture costs nothing extra.
fn solve_dispatch(
    problem: &Problem,
    solver: SolverKind,
    telemetry: Option<&Registry>,
) -> Result<(Solution, SolveEffort), LpError> {
    match (solver, telemetry) {
        (SolverKind::Lp, Some(reg)) => solve_lp_traced_counted(problem, reg).map(lp_effort),
        (SolverKind::Lp, None) => solve_lp_counted(problem).map(lp_effort),
        (SolverKind::Ip, Some(reg)) => solve_ip_traced_counted(problem, reg).map(ip_effort),
        (SolverKind::Ip, None) => solve_ip_counted(problem).map(ip_effort),
    }
}

#[allow(clippy::too_many_arguments)]
fn solve_blockwise(
    relevant: &[StratumSelection],
    freq: &[HashMap<StratumSelection, u64>],
    limits: &HashMap<StratumSelection, u64>,
    mssd: &MssdQuery,
    config: CpsConfig,
    telemetry: Option<&Registry>,
    timings: &mut CpsTimings,
    variables: &mut usize,
    constraints: &mut usize,
    objective: &mut f64,
    mut explain: Option<&mut Vec<ProgramExplain>>,
) -> Result<Vec<SigmaPlan>, LpError> {
    let mut plans = Vec::with_capacity(relevant.len());
    for sel in relevant {
        let t0 = Instant::now();
        let taus = taus_of(active_surveys(sel, freq));
        let mut problem = Problem::new();
        let vars: Vec<_> = taus
            .iter()
            .map(|&tau| problem.add_var(mssd.costs().cost(tau)))
            .collect();
        // equivalence constraints: Σ_{τ∋i} X_τ = F(A_i, σ)
        for i in active_surveys(sel, freq).iter() {
            let coeffs: Vec<_> = taus
                .iter()
                .zip(&vars)
                .filter(|(tau, _)| tau.contains(i))
                .map(|(_, &v)| (v, 1.0))
                .collect();
            let f = freq[i].get(sel).copied().unwrap_or(0);
            problem.add_constraint(coeffs, Relation::Eq, f as f64);
        }
        // upper bound: Σ_τ X_τ ≤ L(σ)
        let limit = limits.get(sel).copied().unwrap_or(0);
        problem.add_constraint(
            vars.iter().map(|&v| (v, 1.0)).collect(),
            Relation::Le,
            limit as f64,
        );
        *variables += problem.n_vars();
        *constraints += problem.n_constraints();
        timings.formulate_secs += t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let (solution, effort) = solve_dispatch(&problem, config.solver, telemetry)?;
        timings.solve_secs += t1.elapsed().as_secs_f64();
        *objective += solution.objective;

        if let Some(out) = explain.as_deref_mut() {
            out.push(program_explain(
                sel.to_string(),
                &problem,
                &solution,
                effort,
                &taus,
                &vars,
                mssd,
                config,
            ));
        }
        let allocations: Vec<(SurveySet, u64)> = taus
            .iter()
            .zip(&vars)
            .map(|(&tau, &v)| {
                let x = solution.values[v];
                let count = match config.solver {
                    SolverKind::Lp => floor_eps(x, config.epsilon),
                    SolverKind::Ip => x.round() as u64,
                };
                (tau, count)
            })
            .filter(|&(_, c)| c > 0)
            .collect();
        let total = allocations.iter().map(|&(_, c)| c).sum();
        plans.push(SigmaPlan {
            sel: sel.clone(),
            allocations,
            total,
        });
    }
    Ok(plans)
}

/// Assemble one [`ProgramExplain`] from a solved (sub)program.
#[allow(clippy::too_many_arguments)]
fn program_explain(
    selection: String,
    problem: &Problem,
    solution: &Solution,
    effort: SolveEffort,
    taus: &[SurveySet],
    vars: &[usize],
    mssd: &MssdQuery,
    config: CpsConfig,
) -> ProgramExplain {
    ProgramExplain {
        selection,
        objective: solution.objective,
        root_relaxation: effort.root_relaxation,
        pivots: effort.pivots,
        nodes: effort.nodes,
        lp_relaxations: effort.lp_relaxations,
        binding_constraints: problem.binding_constraints(&solution.values, 1e-6),
        variables: taus
            .iter()
            .zip(vars)
            .map(|(&tau, &v)| VariableExplain {
                surveys: tau.iter().collect(),
                cost: mssd.costs().cost(tau),
                value: solution.values[v],
                allocation: match config.solver {
                    SolverKind::Lp => floor_eps(solution.values[v], config.epsilon),
                    SolverKind::Ip => solution.values[v].round() as u64,
                },
            })
            .collect(),
    }
}

#[allow(clippy::too_many_arguments)]
fn solve_joint(
    relevant: &[StratumSelection],
    freq: &[HashMap<StratumSelection, u64>],
    limits: &HashMap<StratumSelection, u64>,
    mssd: &MssdQuery,
    config: CpsConfig,
    telemetry: Option<&Registry>,
    timings: &mut CpsTimings,
    variables: &mut usize,
    constraints: &mut usize,
    objective: &mut f64,
    explain: Option<&mut Vec<ProgramExplain>>,
) -> Result<Vec<SigmaPlan>, LpError> {
    let t0 = Instant::now();
    let mut problem = Problem::new();
    // var layout: per selection, its τ list
    let mut layout: Vec<(Vec<SurveySet>, Vec<usize>)> = Vec::with_capacity(relevant.len());
    for sel in relevant {
        let taus = taus_of(active_surveys(sel, freq));
        let vars: Vec<_> = taus
            .iter()
            .map(|&tau| problem.add_var(mssd.costs().cost(tau)))
            .collect();
        for i in active_surveys(sel, freq).iter() {
            let coeffs: Vec<_> = taus
                .iter()
                .zip(&vars)
                .filter(|(tau, _)| tau.contains(i))
                .map(|(_, &v)| (v, 1.0))
                .collect();
            let f = freq[i].get(sel).copied().unwrap_or(0);
            problem.add_constraint(coeffs, Relation::Eq, f as f64);
        }
        let limit = limits.get(sel).copied().unwrap_or(0);
        problem.add_constraint(
            vars.iter().map(|&v| (v, 1.0)).collect(),
            Relation::Le,
            limit as f64,
        );
        layout.push((taus, vars));
    }
    *variables = problem.n_vars();
    *constraints = problem.n_constraints();
    timings.formulate_secs += t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let (solution, effort) = solve_dispatch(&problem, config.solver, telemetry)?;
    timings.solve_secs += t1.elapsed().as_secs_f64();
    *objective = solution.objective;

    if let Some(out) = explain {
        let all_taus: Vec<SurveySet> = layout.iter().flat_map(|(t, _)| t.iter().copied()).collect();
        let all_vars: Vec<usize> = layout.iter().flat_map(|(_, v)| v.iter().copied()).collect();
        out.push(program_explain(
            "joint".to_string(),
            &problem,
            &solution,
            effort,
            &all_taus,
            &all_vars,
            mssd,
            config,
        ));
    }

    Ok(relevant
        .iter()
        .zip(layout)
        .map(|(sel, (taus, vars))| {
            let allocations: Vec<(SurveySet, u64)> = taus
                .iter()
                .zip(&vars)
                .map(|(&tau, &v)| {
                    let x = solution.values[v];
                    let count = match config.solver {
                        SolverKind::Lp => floor_eps(x, config.epsilon),
                        SolverKind::Ip => x.round() as u64,
                    };
                    (tau, count)
                })
                .filter(|&(_, c)| c > 0)
                .collect();
            let total = allocations.iter().map(|&(_, c)| c).sum();
            SigmaPlan {
                sel: sel.clone(),
                allocations,
                total,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mqe::mr_mqe;
    use stratmr_population::{AttrDef, AttrId, Dataset, Placement, Schema};
    use stratmr_query::{CostModel, Formula, StratumConstraint};

    fn x() -> AttrId {
        AttrId(0)
    }

    /// Population: x uniform over 0..100, n individuals.
    fn dataset(n: usize) -> Dataset {
        let schema = Schema::new(vec![AttrDef::numeric("x", 0, 99)]);
        let tuples = (0..n as u64)
            .map(|i| Individual::new(i, vec![(i % 100) as i64], 100))
            .collect();
        Dataset::new(schema, tuples)
    }

    /// Two overlapping surveys over the same attribute, sharing free.
    fn overlapping_mssd() -> MssdQuery {
        let q1 = SsdQuery::new(vec![
            StratumConstraint::new(Formula::lt(x(), 50), 10),
            StratumConstraint::new(Formula::ge(x(), 50), 10),
        ]);
        let q2 = SsdQuery::new(vec![
            StratumConstraint::new(Formula::lt(x(), 30), 6),
            StratumConstraint::new(Formula::between(x(), 30, 69), 8),
            StratumConstraint::new(Formula::ge(x(), 70), 6),
        ]);
        MssdQuery::new(vec![q1, q2], CostModel::paper_style(2, 4.0, &[], 10.0))
    }

    #[test]
    fn traced_cps_names_each_phase() {
        use stratmr_mapreduce::TraceSink;
        let data = dataset(1000).distribute(3, 6, Placement::RoundRobin);
        let sink = TraceSink::new();
        let cluster = Cluster::new(3).with_trace(sink.clone());
        let mssd = overlapping_mssd();
        mr_cps(&cluster, &data, &mssd, CpsConfig::mr_cps(), 42).unwrap();
        let names: Vec<String> = sink.jobs().into_iter().map(|j| j.name).collect();
        assert_eq!(names[0], "cps/initial-mqe", "all: {names:?}");
        assert_eq!(names[1], "cps/limits");
        assert_eq!(names[2], "cps/combined-sqe");
        // residual rounds (if any) are numbered
        for (i, n) in names.iter().enumerate().skip(3) {
            assert_eq!(n, &format!("cps/residual#{}", i - 3), "all: {names:?}");
        }
        // every job carries a non-empty event stream
        assert!(sink.jobs().iter().all(|j| !j.events.is_empty()));
    }

    #[test]
    fn cps_answer_satisfies_all_queries() {
        let data = dataset(2000).distribute(4, 8, Placement::RoundRobin);
        let cluster = Cluster::new(4);
        let mssd = overlapping_mssd();
        let run = mr_cps(&cluster, &data, &mssd, CpsConfig::mr_cps(), 42).unwrap();
        assert!(
            run.answer.satisfies(&mssd),
            "CPS answer must satisfy every SSD"
        );
    }

    #[test]
    fn cps_cost_beats_mqe_on_average() {
        let data = dataset(2000).distribute(3, 6, Placement::RoundRobin);
        let cluster = Cluster::new(3);
        let mssd = overlapping_mssd();
        let runs = 15;
        let mut cps_total = 0.0;
        let mut mqe_total = 0.0;
        for s in 0..runs {
            let cps = mr_cps(&cluster, &data, &mssd, CpsConfig::mr_cps(), s).unwrap();
            cps_total += cps.cost;
            let mqe = mr_mqe(&cluster, &data, mssd.queries(), s);
            mqe_total += mqe.answer.cost(mssd.costs());
        }
        assert!(
            cps_total < mqe_total,
            "CPS ({cps_total}) should be cheaper than MQE ({mqe_total})"
        );
    }

    #[test]
    fn lp_objective_bounds_realized_cost() {
        // C_LP ≤ C_IP ≤ C_A (§6.2.2)
        let data = dataset(1500).distribute(2, 4, Placement::RoundRobin);
        let cluster = Cluster::new(2);
        let mssd = overlapping_mssd();
        let lp = mr_cps(&cluster, &data, &mssd, CpsConfig::mr_cps(), 7).unwrap();
        let ip = mr_cps(&cluster, &data, &mssd, CpsConfig::exact(), 7).unwrap();
        assert!(
            lp.solver_objective <= ip.solver_objective + 1e-6,
            "C_LP {} > C_IP {}",
            lp.solver_objective,
            ip.solver_objective
        );
        assert!(
            ip.solver_objective <= ip.cost + 1e-6,
            "C_IP {} > realized {}",
            ip.solver_objective,
            ip.cost
        );
    }

    #[test]
    fn exact_ip_has_no_residuals() {
        let data = dataset(1500).distribute(2, 4, Placement::RoundRobin);
        let cluster = Cluster::new(2);
        let mssd = overlapping_mssd();
        let run = mr_cps(&cluster, &data, &mssd, CpsConfig::exact(), 11).unwrap();
        assert_eq!(
            run.residual_selections, 0,
            "integral solutions need no residual phase"
        );
        // with no rounding loss the realized answer matches the IP plan
        assert!(run.answer.satisfies(&mssd));
    }

    #[test]
    fn joint_and_blockwise_agree() {
        let data = dataset(1200).distribute(2, 4, Placement::RoundRobin);
        let cluster = Cluster::new(2);
        let mssd = overlapping_mssd();
        let block = mr_cps(
            &cluster,
            &data,
            &mssd,
            CpsConfig {
                joint_formulation: false,
                ..CpsConfig::mr_cps()
            },
            5,
        )
        .unwrap();
        let joint = mr_cps(
            &cluster,
            &data,
            &mssd,
            CpsConfig {
                joint_formulation: true,
                ..CpsConfig::mr_cps()
            },
            5,
        )
        .unwrap();
        assert!(
            (block.solver_objective - joint.solver_objective).abs() < 1e-6,
            "block {} vs joint {}",
            block.solver_objective,
            joint.solver_objective
        );
        assert_eq!(block.variables, joint.variables);
        assert_eq!(block.constraints, joint.constraints);
    }

    #[test]
    fn sharing_is_high_when_free_and_low_when_penalized() {
        let data = dataset(2000).distribute(2, 4, Placement::RoundRobin);
        let cluster = Cluster::new(2);
        // two *identical* surveys → everything can be shared
        let q = SsdQuery::new(vec![StratumConstraint::new(Formula::lt(x(), 100), 20)]);
        let free = MssdQuery::new(
            vec![q.clone(), q.clone()],
            CostModel::paper_style(2, 4.0, &[], 0.0),
        );
        let run = mr_cps(&cluster, &data, &free, CpsConfig::mr_cps(), 3).unwrap();
        let hist = run.answer.sharing_histogram(2);
        assert_eq!(hist[1], 20, "all individuals should serve both surveys");
        assert!(
            (run.cost - 80.0).abs() < 1e-9,
            "20 shared × $4 = $80, got {}",
            run.cost
        );

        // heavy penalty → sharing never pays off
        let penalized = MssdQuery::new(
            vec![q.clone(), q],
            CostModel::paper_style(2, 4.0, &[(0, 1)], 100.0),
        );
        let run2 = mr_cps(&cluster, &data, &penalized, CpsConfig::mr_cps(), 3).unwrap();
        let hist2 = run2.answer.sharing_histogram(2);
        assert_eq!(hist2[1], 0, "penalty should forbid sharing: {hist2:?}");
        assert!((run2.cost - 160.0).abs() < 1e-9);
    }

    #[test]
    fn example3_single_men_are_not_overrepresented() {
        // Example 3: survey A wants 6 men, survey B wants 12 singles.
        // Sharing uses single men — but only as many as a representative
        // sample contains, not "as many as possible".
        let schema = Schema::new(vec![
            AttrDef::categorical("gender", &["male", "female"]),
            AttrDef::categorical("status", &["single", "married"]),
        ]);
        let g = schema.attr_id("gender").unwrap();
        let st = schema.attr_id("status").unwrap();
        // population: 200 individuals, 50/50 gender, 50/50 status, independent
        let tuples: Vec<Individual> = (0..200u64)
            .map(|i| Individual::new(i, vec![(i % 2) as i64, ((i / 2) % 2) as i64], 10))
            .collect();
        let data = Dataset::new(schema, tuples).distribute(2, 4, Placement::RoundRobin);
        let cluster = Cluster::new(2);
        let men = SsdQuery::new(vec![StratumConstraint::new(Formula::eq(g, 0), 6)]);
        let singles = SsdQuery::new(vec![StratumConstraint::new(Formula::eq(st, 0), 12)]);
        let mssd = MssdQuery::new(vec![men, singles], CostModel::paper_style(2, 1.0, &[], 0.0));
        // across runs, the fraction of single men in survey A must hover
        // around the population rate (1/2), not 100%
        let runs = 40;
        let mut single_men = 0usize;
        for s in 0..runs {
            let run = mr_cps(&cluster, &data, &mssd, CpsConfig::mr_cps(), s).unwrap();
            assert!(run.answer.satisfies(&mssd));
            single_men += run
                .answer
                .answer(0)
                .iter()
                .filter(|t| t.get(st) == 0)
                .count();
        }
        let frac = single_men as f64 / (runs * 6) as f64;
        assert!(
            (0.35..=0.65).contains(&frac),
            "single-men fraction {frac} is biased (expected ≈ 0.5)"
        );
    }

    /// A constructed instance whose LP optimum is a *fractional* vertex
    /// (`X_{12} = X_{13} = X_{23} = 1/2`), so floor rounding zeroes the
    /// whole plan and the residual phase must assemble the entire answer.
    #[test]
    fn fractional_lp_vertex_exercises_residual_phase() {
        // exactly 2 individuals → L(σ) = 2
        let schema = Schema::new(vec![AttrDef::numeric("x", 0, 0)]);
        let tuples = vec![
            Individual::new(0, vec![0], 10),
            Individual::new(1, vec![0], 10),
        ];
        let data = Dataset::new(schema, tuples).distribute(2, 2, Placement::RoundRobin);
        let cluster = Cluster::new(2);
        // three surveys, each sampling 1 individual from the one stratum
        let q = SsdQuery::new(vec![StratumConstraint::new(Formula::eq(x(), 0), 1)]);
        // pair sharing mildly penalized, triple sharing heavily:
        // LP optimum = three half-pairs (cost 9) beats {123} (10) and
        // {12}+{3} (10); singletons alone are infeasible (Σ = 3 > L = 2)
        let costs = CostModel::paper_style(3, 4.0, &[(0, 1), (0, 2), (1, 2)], 2.0)
            .with_override(SurveySet::from_iter([0, 1, 2]), 10.0);
        let mssd = MssdQuery::new(vec![q.clone(), q.clone(), q], costs);
        let run = mr_cps(&cluster, &data, &mssd, CpsConfig::mr_cps(), 3).unwrap();
        assert!(
            (run.solver_objective - 9.0).abs() < 1e-6,
            "expected the fractional optimum 9, got {}",
            run.solver_objective
        );
        assert_eq!(
            run.residual_selections, 3,
            "flooring a fully fractional plan leaves everything to residuals"
        );
        assert!(
            run.answer.satisfies(&mssd),
            "residual phase must complete the answer"
        );
        // realized integral cost can't beat the IP optimum (10)
        assert!(run.cost >= 10.0 - 1e-9, "realized {}", run.cost);
    }

    /// MR-CPS telemetry: per-round spans cover every phase, the LP is
    /// solved once per relevant selection (blockwise), and the residual
    /// counters agree with the run's own accounting.
    #[test]
    fn telemetry_covers_all_phases() {
        let registry = Registry::new();
        let data = dataset(1500).distribute(3, 6, Placement::RoundRobin);
        let cluster = Cluster::new(3).with_telemetry(registry.clone());
        let mssd = overlapping_mssd();
        let run = mr_cps(&cluster, &data, &mssd, CpsConfig::mr_cps(), 17).unwrap();

        let snap = registry.snapshot();
        assert_eq!(snap.counter("cps.runs"), 1);
        for phase in ["initial_mqe", "limits", "solve", "combined_sqe"] {
            assert_eq!(snap.span_calls(&format!("cps.run/{phase}")), 1, "{phase}");
        }
        // blockwise: one LP solve per relevant selection, nested under
        // the solve span
        assert_eq!(snap.counter("lp.solves"), run.relevant_selections as u64);
        assert_eq!(
            snap.span_calls("cps.run/solve/lp.solve"),
            run.relevant_selections as u64
        );
        assert!(snap.counter("lp.pivots") > 0);
        assert_eq!(snap.counter("cps.program.variables"), run.variables as u64);
        assert_eq!(
            snap.counter("cps.program.constraints"),
            run.constraints as u64
        );
        // residual accounting matches the run's own
        let rounds = run
            .phase_stats
            .iter()
            .filter(|(l, _)| l.starts_with("residual"))
            .count() as u64;
        assert_eq!(snap.counter("cps.residual.rounds"), rounds);
        assert_eq!(
            snap.counter("cps.residual.selections"),
            run.residual_selections as u64
        );
        // every combined-query stratum keeps candidates = sampled + rejected
        let strata: Vec<String> = snap
            .counter_names()
            .filter(|n| n.starts_with("cps.combined.") && n.ends_with(".candidates"))
            .map(|n| n.trim_end_matches(".candidates").to_string())
            .collect();
        assert!(!strata.is_empty(), "combined job must emit counters");
        for s in strata {
            assert_eq!(
                snap.counter(&format!("{s}.candidates")),
                snap.counter(&format!("{s}.sampled")) + snap.counter(&format!("{s}.rejected")),
                "{s}"
            );
            // the requested frequency is part of the audit ledger, and a
            // reservoir never returns more than was requested
            assert!(
                snap.counter(&format!("{s}.requested")) >= snap.counter(&format!("{s}.sampled")),
                "{s}"
            );
        }
    }

    #[test]
    fn exact_solver_emits_ip_counters() {
        let registry = Registry::new();
        let data = dataset(1000).distribute(2, 4, Placement::RoundRobin);
        let cluster = Cluster::new(2).with_telemetry(registry.clone());
        let mssd = overlapping_mssd();
        let run = mr_cps(&cluster, &data, &mssd, CpsConfig::exact(), 19).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("ip.solves"), run.relevant_selections as u64);
        assert!(snap.counter("ip.nodes") >= snap.counter("ip.solves"));
        assert!(snap.counter("ip.lp_relaxations") >= snap.counter("ip.solves"));
        assert_eq!(snap.counter("lp.solves"), 0, "LP path must stay untouched");
    }

    #[test]
    fn deterministic_given_seed() {
        let data = dataset(1000).distribute(2, 4, Placement::RoundRobin);
        let cluster = Cluster::new(2);
        let mssd = overlapping_mssd();
        let a = mr_cps(&cluster, &data, &mssd, CpsConfig::mr_cps(), 9).unwrap();
        let b = mr_cps(&cluster, &data, &mssd, CpsConfig::mr_cps(), 9).unwrap();
        assert_eq!(a.answer, b.answer);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn empty_mssd_yields_empty_answer() {
        let data = dataset(100).distribute(2, 2, Placement::RoundRobin);
        let cluster = Cluster::new(2);
        let mssd = MssdQuery::new(vec![], CostModel::indifferent(vec![]));
        let run = mr_cps(&cluster, &data, &mssd, CpsConfig::mr_cps(), 1).unwrap();
        assert!(run.answer.is_empty());
        assert_eq!(run.cost, 0.0);
        assert_eq!(run.relevant_selections, 0);
    }

    #[test]
    fn explain_captures_sharing_and_cost_attribution() {
        let data = dataset(2000).distribute(2, 4, Placement::RoundRobin);
        let cluster = Cluster::new(2);
        // two identical surveys with free sharing: every individual is
        // shared, so the graph has one fully-shared edge and the cost
        // splits evenly
        let q = SsdQuery::new(vec![StratumConstraint::new(Formula::lt(x(), 100), 20)]);
        let free = MssdQuery::new(vec![q.clone(), q], CostModel::paper_style(2, 4.0, &[], 0.0));
        let (run, explain) =
            mr_cps_explain(&cluster, &data, &free, CpsConfig::mr_cps(), 3).unwrap();
        assert_eq!(explain.sharing.len(), 1);
        let edge = &explain.sharing[0];
        assert_eq!(edge.surveys, (0, 1));
        assert_eq!(edge.shared, 20);
        assert!((edge.pair_cost - 4.0).abs() < 1e-9);
        assert!((edge.savings - 4.0).abs() < 1e-9, "4 + 4 − 4 = 4");
        // even split: 20 shared individuals × $4 / 2 surveys = $40 each
        assert_eq!(explain.survey_costs.len(), 2);
        for c in &explain.survey_costs {
            assert_eq!(c.individuals, 20);
            assert!((c.attributed_cost - 40.0).abs() < 1e-9);
        }
        let attributed: f64 = explain.survey_costs.iter().map(|c| c.attributed_cost).sum();
        assert!((attributed - run.cost).abs() < 1e-9, "attribution is exact");
        assert_eq!(explain.selections.len(), run.relevant_selections);
        assert_eq!(explain.programs.len(), run.relevant_selections, "blockwise");
        assert_eq!(explain.realized_cost, run.cost);
        assert_eq!(explain.solver_objective, run.solver_objective);
    }

    #[test]
    fn explain_gap_is_zero_for_exact_and_nonnegative_for_lp() {
        let data = dataset(1500).distribute(2, 4, Placement::RoundRobin);
        let cluster = Cluster::new(2);
        let mssd = overlapping_mssd();
        let (_, lp) = mr_cps_explain(&cluster, &data, &mssd, CpsConfig::mr_cps(), 7).unwrap();
        assert!(lp.optimality_gap() >= 0.0);
        assert!(lp.to_json().contains("\"solver\": \"lp\""));
        let (run, ip) = mr_cps_explain(&cluster, &data, &mssd, CpsConfig::exact(), 7).unwrap();
        assert_eq!(
            ip.optimality_gap(),
            0.0,
            "exact IP realizes its own objective (C_A {} vs C_IP {})",
            run.cost,
            ip.solver_objective
        );
        assert!(ip.to_json().contains("\"solver\": \"ip\""));
        // every block's root relaxation lower-bounds its integral optimum
        for p in &ip.programs {
            assert!(p.root_relaxation <= p.objective + 1e-9, "{}", p.selection);
            assert!(p.lp_relaxations >= 1);
            assert!(!p.binding_constraints.is_empty(), "equalities always bind");
        }
    }

    #[test]
    fn explain_residuals_cover_the_fractional_vertex() {
        // same instance as fractional_lp_vertex_exercises_residual_phase:
        // flooring the half-integral optimum leaves all 3 selections to
        // the residual phase, so the gap is strictly positive
        let schema = Schema::new(vec![AttrDef::numeric("x", 0, 0)]);
        let tuples = vec![
            Individual::new(0, vec![0], 10),
            Individual::new(1, vec![0], 10),
        ];
        let data = Dataset::new(schema, tuples).distribute(2, 2, Placement::RoundRobin);
        let cluster = Cluster::new(2);
        let q = SsdQuery::new(vec![StratumConstraint::new(Formula::eq(x(), 0), 1)]);
        let costs = CostModel::paper_style(3, 4.0, &[(0, 1), (0, 2), (1, 2)], 2.0)
            .with_override(SurveySet::from_iter([0, 1, 2]), 10.0);
        let mssd = MssdQuery::new(vec![q.clone(), q.clone(), q], costs);
        let (run, explain) =
            mr_cps_explain(&cluster, &data, &mssd, CpsConfig::mr_cps(), 3).unwrap();
        assert!(!explain.residual_rounds.is_empty());
        let added: u64 = explain.residual_rounds.iter().map(|r| r.added).sum();
        assert_eq!(added as usize, run.residual_selections);
        assert_eq!(explain.residual_rounds[0].deficit, 3);
        assert!(
            explain.optimality_gap() > 0.0,
            "rounding loss must show up as a positive gap: C_sol {} vs C_A {}",
            explain.solver_objective,
            explain.realized_cost
        );
        // the fractional LP values are visible in the program explain
        let frac = explain
            .programs
            .iter()
            .flat_map(|p| p.variables.iter())
            .filter(|v| v.value.fract().abs() > 1e-6)
            .count();
        assert!(frac > 0, "the LP vertex is fractional");
        let text = explain.render_text();
        assert!(text.contains("optimality gap"));
        assert!(text.contains("residual rounds:"));
    }

    #[test]
    fn explain_json_is_byte_deterministic() {
        let data = dataset(1200).distribute(3, 6, Placement::RoundRobin);
        let cluster = Cluster::new(3);
        let mssd = overlapping_mssd();
        let (_, a) = mr_cps_explain(&cluster, &data, &mssd, CpsConfig::mr_cps(), 21).unwrap();
        let (_, b) = mr_cps_explain(&cluster, &data, &mssd, CpsConfig::mr_cps(), 21).unwrap();
        assert_eq!(a.to_json(), b.to_json(), "fixed seed → identical bytes");
        assert_eq!(a.render_text(), b.render_text());
        // capture must not perturb the pipeline itself
        let plain = mr_cps(&cluster, &data, &mssd, CpsConfig::mr_cps(), 21).unwrap();
        assert_eq!(plain.cost, a.realized_cost);
        // joint formulation collapses the programs into one
        let joint_cfg = CpsConfig {
            joint_formulation: true,
            ..CpsConfig::mr_cps()
        };
        let (_, j) = mr_cps_explain(&cluster, &data, &mssd, joint_cfg, 21).unwrap();
        assert_eq!(j.programs.len(), 1);
        assert_eq!(j.programs[0].selection, "joint");
        assert_eq!(j.programs[0].variables.len(), j.variables);
    }

    #[test]
    fn phase_stats_are_labeled() {
        let data = dataset(800).distribute(2, 4, Placement::RoundRobin);
        let cluster = Cluster::new(2);
        let mssd = overlapping_mssd();
        let run = mr_cps(&cluster, &data, &mssd, CpsConfig::mr_cps(), 2).unwrap();
        let labels: Vec<&str> = run.phase_stats.iter().map(|(l, _)| l.as_str()).collect();
        assert!(labels.contains(&"initial MR-MQE"));
        assert!(labels.contains(&"selection limits"));
        assert!(labels.contains(&"combined MR-SQE"));
    }
}
