//! Distributed simple random sampling (SRS) over MapReduce.
//!
//! The trivial stratified design with one all-covering stratum: useful
//! as a baseline against stratified designs (the Example 1 comparison)
//! and as a Rust counterpart to the distributed-streams SRS literature
//! the paper relates to (§2, Cormode et al. / Tirthapura & Woodruff).
//! Internally this *is* MR-SQE with a tautology stratum — one combiner
//! reservoir per split, one unified-sampler merge.

use crate::sqe::{mr_sqe_on_splits, SqeRun};
use stratmr_mapreduce::{Cluster, InputSplit};
use stratmr_population::{DistributedDataset, Individual};
use stratmr_query::{Formula, SsdQuery, StratumConstraint};

/// Draw a uniform simple random sample of `n` individuals from the
/// distributed dataset, in one MapReduce pass.
pub fn mr_srs(
    cluster: &Cluster,
    data: &DistributedDataset,
    n: usize,
    seed: u64,
) -> (Vec<Individual>, SqeRun) {
    mr_srs_on_splits(cluster, &crate::input::to_input_splits(data), n, seed)
}

/// [`mr_srs`] on pre-built input splits.
pub fn mr_srs_on_splits(
    cluster: &Cluster,
    splits: &[InputSplit<Individual>],
    n: usize,
    seed: u64,
) -> (Vec<Individual>, SqeRun) {
    let query = SsdQuery::new(vec![StratumConstraint::new(Formula::tautology(), n)]);
    let run = mr_sqe_on_splits(&cluster.named_or("srs"), splits, &query, seed);
    (run.answer.stratum(0).to_vec(), run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{chi2_critical_999, chi2_uniform};
    use stratmr_population::{AttrDef, Dataset, Placement, Schema};

    fn dataset(n: usize) -> Dataset {
        let schema = Schema::new(vec![AttrDef::numeric("x", 0, 9)]);
        let tuples = (0..n as u64)
            .map(|i| Individual::new(i, vec![(i % 10) as i64], 10))
            .collect();
        Dataset::new(schema, tuples)
    }

    #[test]
    fn exact_size_no_duplicates() {
        let data = dataset(500).distribute(4, 8, Placement::RoundRobin);
        let (sample, _) = mr_srs(&Cluster::new(4), &data, 50, 3);
        assert_eq!(sample.len(), 50);
        let mut ids: Vec<u64> = sample.iter().map(|t| t.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 50);
    }

    #[test]
    fn oversampling_returns_whole_population() {
        let data = dataset(30).distribute(2, 4, Placement::RoundRobin);
        let (sample, _) = mr_srs(&Cluster::new(2), &data, 100, 1);
        assert_eq!(sample.len(), 30);
    }

    #[test]
    fn srs_is_uniform_across_machines() {
        // even with contiguous (non-random) placement
        let data = dataset(40).distribute(4, 4, Placement::Contiguous);
        let cluster = Cluster::new(4);
        let trials = 8000;
        let mut counts = vec![0u64; 40];
        for s in 0..trials {
            let (sample, _) = mr_srs(&cluster, &data, 4, s);
            for t in sample {
                counts[t.id as usize] += 1;
            }
        }
        let chi2 = chi2_uniform(&counts);
        let crit = chi2_critical_999(39);
        assert!(chi2 < crit, "SRS biased: {chi2} >= {crit}");
    }
}
