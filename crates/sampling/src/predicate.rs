//! Split-based predicate sampling — the Grover & Carey baseline (§2).
//!
//! Grover & Carey's MapReduce extension for predicate-based sampling
//! reads input splits *incrementally* and stops as soon as enough
//! predicate-matching tuples have been collected. That is efficient, but
//! it "relies on an assumption that the data is stored in splits, where
//! each split represents a random sample of the entire data. Otherwise,
//! the resulting sample would be biased … specifically, this assumption
//! does not hold … where machines in a certain geographical region store
//! data coming from this region."
//!
//! This module implements that strategy so the bias can be measured —
//! see the unit tests, which show it is fine under shuffled placement
//! and detectably biased under sorted placement, whereas MR-SQE is
//! unbiased under both.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use stratmr_mapreduce::InputSplit;
use stratmr_population::Individual;
use stratmr_query::Formula;

/// Outcome of an early-terminating predicate sample.
#[derive(Debug, Clone)]
pub struct PredicateSample {
    /// The collected tuples (up to `n`).
    pub sample: Vec<Individual>,
    /// How many splits were actually read — the efficiency win.
    pub splits_read: usize,
    /// How many tuples were scanned.
    pub tuples_scanned: usize,
}

/// Collect `n` tuples matching `predicate` by reading splits one at a
/// time and stopping early (the Grover & Carey strategy). The final
/// over-collection from the last split is down-sampled uniformly.
///
/// Unbiased **only if** every split is a random sample of the data; use
/// MR-SQE when placement is not random.
pub fn predicate_sample(
    splits: &[InputSplit<Individual>],
    predicate: &Formula,
    n: usize,
    seed: u64,
) -> PredicateSample {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut sample = Vec::with_capacity(n);
    let mut splits_read = 0;
    let mut tuples_scanned = 0;
    for split in splits {
        splits_read += 1;
        let mut from_this_split: Vec<Individual> = Vec::new();
        for t in &split.records {
            tuples_scanned += 1;
            if predicate.eval(t) {
                from_this_split.push(t.clone());
            }
        }
        let missing = n - sample.len();
        if from_this_split.len() > missing {
            // down-sample the final split's matches uniformly
            from_this_split.shuffle(&mut rng);
            from_this_split.truncate(missing);
        }
        sample.extend(from_this_split);
        if sample.len() >= n {
            break;
        }
    }
    PredicateSample {
        sample,
        splits_read,
        tuples_scanned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::to_input_splits;
    use crate::stats::{chi2_critical_999, chi2_uniform};
    use stratmr_population::{AttrDef, AttrId, Dataset, Placement, Schema};

    fn dataset(n: usize) -> Dataset {
        let schema = Schema::new(vec![AttrDef::numeric("x", 0, 9)]);
        let tuples = (0..n as u64)
            .map(|i| Individual::new(i, vec![(i % 10) as i64], 10))
            .collect();
        Dataset::new(schema, tuples)
    }

    fn x() -> AttrId {
        AttrId(0)
    }

    #[test]
    fn early_termination_reads_few_splits() {
        let data = dataset(10_000).distribute(10, 100, Placement::Shuffled(1));
        let splits = to_input_splits(&data);
        let result = predicate_sample(&splits, &Formula::lt(x(), 5), 50, 7);
        assert_eq!(result.sample.len(), 50);
        assert!(
            result.splits_read <= 2,
            "should stop after ~1 split, read {}",
            result.splits_read
        );
        assert!(result.tuples_scanned < 10_000 / 10);
        assert!(result.sample.iter().all(|t| t.get(x()) < 5));
    }

    #[test]
    fn unbiased_under_shuffled_placement() {
        let data = dataset(200);
        let trials = 8000;
        let mut counts = vec![0u64; 200];
        for s in 0..trials {
            // reshuffle placement per trial — the Grover & Carey premise
            let dist = data.distribute(4, 10, Placement::Shuffled(s));
            let splits = to_input_splits(&dist);
            let result = predicate_sample(&splits, &Formula::tautology(), 10, s);
            for t in result.sample {
                counts[t.id as usize] += 1;
            }
        }
        let chi2 = chi2_uniform(&counts);
        let crit = chi2_critical_999(199);
        assert!(
            chi2 < crit,
            "unexpected bias under shuffle: {chi2} >= {crit}"
        );
    }

    #[test]
    fn biased_under_sorted_placement() {
        // regional storage: tuples sorted by attribute, early splits hold
        // low regions — early termination then oversamples them
        let data = dataset(200);
        let dist = data.distribute(4, 10, Placement::SortedBy(x()));
        let splits = to_input_splits(&dist);
        let trials = 4000;
        let mut counts = vec![0u64; 200];
        for s in 0..trials {
            let result = predicate_sample(&splits, &Formula::tautology(), 10, s);
            for t in result.sample {
                counts[t.id as usize] += 1;
            }
        }
        let chi2 = chi2_uniform(&counts);
        let crit = chi2_critical_999(199);
        assert!(
            chi2 > crit,
            "sorted placement should bias early termination: {chi2} <= {crit}"
        );
    }

    #[test]
    fn insufficient_matches_returns_what_exists() {
        let data = dataset(100).distribute(2, 4, Placement::RoundRobin);
        let splits = to_input_splits(&data);
        let result = predicate_sample(&splits, &Formula::lt(x(), 1), 500, 3);
        assert_eq!(result.sample.len(), 10); // only 10 tuples have x = 0
        assert_eq!(result.splits_read, 4);
    }
}
