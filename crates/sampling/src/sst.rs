//! Stratum selections and the stratum selection trie — SST (§5.2.2,
//! §5.2.5.1, Figure 5).
//!
//! A *stratum selection* σ picks at most one stratum constraint from each
//! SSD query. The selection of a tuple, `σ(t)`, is the maximal selection
//! it satisfies: for each query, the stratum the tuple falls in (if any).
//! CPS needs, for every answer `A_i` and every σ, the *stratum-selection
//! frequency* `F(A_i, σ)` — the paper stores these in a depth-`n` trie
//! whose leaves carry instance counts.

use std::collections::HashMap;
use std::sync::Arc;
use stratmr_population::Individual;
use stratmr_query::{Formula, SsdQuery, StratumId, SurveySet};

/// Sentinel for "no stratum of this query" in the packed representation.
const NONE: i32 = -1;

/// A stratum selection σ over `n` queries: for each query, an optional
/// stratum constraint index.
///
/// Cheap to clone and hashable — it serves as a MapReduce key in the
/// selection-limit job (Figure 4).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StratumSelection(Arc<[i32]>);

impl StratumSelection {
    /// Build from explicit per-query choices.
    pub fn from_choices(choices: &[Option<StratumId>]) -> Self {
        Self(
            choices
                .iter()
                .map(|c| c.map_or(NONE, |k| k as i32))
                .collect(),
        )
    }

    /// The selection of tuple `t`: for each query, the (unique) stratum
    /// constraint `t` satisfies.
    pub fn of(t: &Individual, queries: &[SsdQuery]) -> Self {
        Self(
            queries
                .iter()
                .map(|q| q.matching_stratum(t).map_or(NONE, |k| k as i32))
                .collect(),
        )
    }

    /// Number of queries the selection spans.
    pub fn n_queries(&self) -> usize {
        self.0.len()
    }

    /// The stratum chosen for query `i`, if any.
    pub fn stratum_of(&self, i: usize) -> Option<StratumId> {
        match self.0[i] {
            NONE => None,
            k => Some(k as usize),
        }
    }

    /// The SSD indexes `I(σ)`: queries that have a stratum constraint in
    /// the selection.
    pub fn survey_indexes(&self) -> SurveySet {
        SurveySet::from_iter(
            self.0
                .iter()
                .enumerate()
                .filter(|&(_, &k)| k != NONE)
                .map(|(i, _)| i),
        )
    }

    /// True when no query has a stratum in the selection.
    pub fn is_empty(&self) -> bool {
        self.0.iter().all(|&k| k == NONE)
    }

    /// The propositional projection `π_i(σ)` (§5.2.2): the chosen
    /// stratum's condition, or the negation of the disjunction of all of
    /// query `i`'s stratum conditions when none is chosen.
    pub fn projection(&self, i: usize, queries: &[SsdQuery]) -> Formula {
        match self.stratum_of(i) {
            Some(k) => queries[i].stratum(k).formula.clone(),
            None => Formula::any(queries[i].constraints().iter().map(|s| s.formula.clone())).not(),
        }
    }

    /// The full condition `ϕ(σ) = π_1(σ) ∧ … ∧ π_n(σ)` identifying the
    /// tuples that satisfy σ (and no other stratum).
    pub fn formula(&self, queries: &[SsdQuery]) -> Formula {
        Formula::all((0..self.0.len()).map(|i| self.projection(i, queries)))
    }

    /// Does tuple `t` satisfy the selection — i.e. is `σ(t) = σ`?
    pub fn matches(&self, t: &Individual, queries: &[SsdQuery]) -> bool {
        self == &Self::of(t, queries)
    }
}

impl std::fmt::Display for StratumSelection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨")?;
        for (i, &k) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            match k {
                NONE => write!(f, "·")?,
                k => write!(f, "s{},{}", i + 1, k)?,
            }
        }
        write!(f, "⟩")
    }
}

/// One trie node: children keyed by the stratum choice at this depth.
#[derive(Debug, Clone, Default)]
struct Node {
    children: HashMap<i32, usize>,
    count: u64,
}

/// The stratum selection trie of Figure 5.
///
/// Depth equals the number of queries; a path from the root picks one
/// (optional) stratum per query, and the leaf stores how many inserted
/// tuples carried exactly that selection.
#[derive(Debug, Clone)]
pub struct Sst {
    n_queries: usize,
    nodes: Vec<Node>,
    total: u64,
}

impl Sst {
    /// An empty trie over `n_queries` queries.
    pub fn new(n_queries: usize) -> Self {
        Self {
            n_queries,
            nodes: vec![Node::default()],
            total: 0,
        }
    }

    /// Build the trie of `σ(t)` for every tuple.
    pub fn from_tuples<'a>(
        tuples: impl IntoIterator<Item = &'a Individual>,
        queries: &[SsdQuery],
    ) -> Self {
        let mut sst = Self::new(queries.len());
        for t in tuples {
            sst.insert(&StratumSelection::of(t, queries));
        }
        sst
    }

    /// Insert one instance of a selection.
    pub fn insert(&mut self, sel: &StratumSelection) {
        self.insert_count(sel, 1);
    }

    /// Insert `count` instances of a selection.
    ///
    /// # Panics
    /// Panics when the selection's arity differs from the trie's depth.
    pub fn insert_count(&mut self, sel: &StratumSelection, count: u64) {
        assert_eq!(sel.n_queries(), self.n_queries, "selection arity mismatch");
        let mut node = 0usize;
        for depth in 0..self.n_queries {
            let key = sel.0[depth];
            node = match self.nodes[node].children.get(&key) {
                Some(&child) => child,
                None => {
                    let child = self.nodes.len();
                    self.nodes.push(Node::default());
                    self.nodes[node].children.insert(key, child);
                    child
                }
            };
        }
        self.nodes[node].count += count;
        self.total += count;
    }

    /// The instance count of a selection (0 when absent).
    pub fn count(&self, sel: &StratumSelection) -> u64 {
        assert_eq!(sel.n_queries(), self.n_queries, "selection arity mismatch");
        let mut node = 0usize;
        for depth in 0..self.n_queries {
            match self.nodes[node].children.get(&sel.0[depth]) {
                Some(&child) => node = child,
                None => return 0,
            }
        }
        self.nodes[node].count
    }

    /// Total inserted instances.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct selections stored.
    pub fn len(&self) -> usize {
        self.iter().count()
    }

    /// True when nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Iterate over `(selection, count)` for every stored selection
    /// (depth-first, deterministic order).
    pub fn iter(&self) -> impl Iterator<Item = (StratumSelection, u64)> + '_ {
        let mut out = Vec::new();
        let mut path = vec![0i32; self.n_queries];
        self.collect(0, 0, &mut path, &mut out);
        out.into_iter()
    }

    fn collect(
        &self,
        node: usize,
        depth: usize,
        path: &mut Vec<i32>,
        out: &mut Vec<(StratumSelection, u64)>,
    ) {
        if depth == self.n_queries {
            if self.nodes[node].count > 0 {
                out.push((
                    StratumSelection(path.as_slice().into()),
                    self.nodes[node].count,
                ));
            }
            return;
        }
        // deterministic child order
        let mut keys: Vec<i32> = self.nodes[node].children.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let child = self.nodes[node].children[&key];
            path[depth] = key;
            self.collect(child, depth + 1, path, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stratmr_population::{AttrDef, AttrId, Schema};
    use stratmr_query::{Formula, StratumConstraint};

    fn x() -> AttrId {
        AttrId(0)
    }

    fn schema() -> Schema {
        Schema::new(vec![AttrDef::numeric("x", 0, 99)])
    }

    fn ind(id: u64, v: i64) -> Individual {
        Individual::new(id, vec![v], 0)
    }

    /// Q1: men/women split at 50; Q2: three bands.
    fn queries() -> Vec<SsdQuery> {
        vec![
            SsdQuery::new(vec![
                StratumConstraint::new(Formula::lt(x(), 50), 2),
                StratumConstraint::new(Formula::ge(x(), 50), 2),
            ]),
            SsdQuery::new(vec![
                StratumConstraint::new(Formula::lt(x(), 20), 1),
                StratumConstraint::new(Formula::between(x(), 20, 79), 1),
            ]),
        ]
    }

    #[test]
    fn selection_of_tuple() {
        let qs = queries();
        let sel = StratumSelection::of(&ind(0, 10), &qs);
        assert_eq!(sel.stratum_of(0), Some(0));
        assert_eq!(sel.stratum_of(1), Some(0));
        assert_eq!(sel.survey_indexes().iter().collect::<Vec<_>>(), vec![0, 1]);
        // x = 90: stratum 1 of Q1, no stratum of Q2
        let sel2 = StratumSelection::of(&ind(1, 90), &qs);
        assert_eq!(sel2.stratum_of(0), Some(1));
        assert_eq!(sel2.stratum_of(1), None);
        assert_eq!(sel2.survey_indexes().len(), 1);
        assert!(!sel2.is_empty());
    }

    #[test]
    fn projection_and_formula_semantics() {
        let qs = queries();
        let t = ind(0, 60); // Q1: stratum 1, Q2: stratum 1 (20..=79)
        let sel = StratumSelection::of(&t, &qs);
        // the tuple satisfies its own selection formula
        assert!(sel.formula(&qs).eval(&t));
        assert!(sel.matches(&t, &qs));
        // a tuple with a different selection fails the formula
        let other = ind(1, 90);
        assert!(!sel.formula(&qs).eval(&other));
        assert!(!sel.matches(&other, &qs));
        // negated projection: selection with no Q2 stratum rejects tuples
        // inside Q2's strata
        let sel90 = StratumSelection::of(&other, &qs);
        assert!(sel90.formula(&qs).eval(&other));
        assert!(!sel90.formula(&qs).eval(&ind(2, 55)));
    }

    #[test]
    fn selections_partition_the_population() {
        // every tuple satisfies exactly one selection formula
        let qs = queries();
        let _ = schema();
        for v in 0..100 {
            let t = ind(v as u64, v);
            let own = StratumSelection::of(&t, &qs);
            assert!(own.formula(&qs).eval(&t), "x={v} fails own σ");
        }
    }

    #[test]
    fn trie_counts_instances() {
        let qs = queries();
        let tuples: Vec<Individual> = vec![ind(0, 10), ind(1, 10), ind(2, 60), ind(3, 90)];
        let sst = Sst::from_tuples(tuples.iter(), &qs);
        assert_eq!(sst.total(), 4);
        assert_eq!(sst.len(), 3);
        let sel_10 = StratumSelection::of(&ind(9, 10), &qs);
        assert_eq!(sst.count(&sel_10), 2);
        let sel_60 = StratumSelection::of(&ind(9, 60), &qs);
        assert_eq!(sst.count(&sel_60), 1);
        let absent = StratumSelection::from_choices(&[None, None]);
        assert_eq!(sst.count(&absent), 0);
    }

    #[test]
    fn trie_iteration_is_deterministic_and_complete() {
        let qs = queries();
        let mut sst = Sst::new(2);
        let sels = [
            StratumSelection::from_choices(&[Some(0), Some(1)]),
            StratumSelection::from_choices(&[Some(1), None]),
            StratumSelection::from_choices(&[None, Some(0)]),
        ];
        for (i, s) in sels.iter().enumerate() {
            sst.insert_count(s, (i + 1) as u64);
        }
        let collected: Vec<(StratumSelection, u64)> = sst.iter().collect();
        assert_eq!(collected.len(), 3);
        let total: u64 = collected.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 6);
        // a second iteration yields the same order
        let again: Vec<(StratumSelection, u64)> = sst.iter().collect();
        assert_eq!(collected, again);
        let _ = qs;
    }

    #[test]
    fn insert_count_accumulates() {
        let mut sst = Sst::new(1);
        let s = StratumSelection::from_choices(&[Some(0)]);
        sst.insert_count(&s, 5);
        sst.insert(&s);
        assert_eq!(sst.count(&s), 6);
        assert_eq!(sst.total(), 6);
        assert!(!sst.is_empty());
    }

    #[test]
    fn display_renders_selections() {
        let s = StratumSelection::from_choices(&[Some(0), None, Some(2)]);
        assert_eq!(s.to_string(), "⟨s1,0,·,s3,2⟩");
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_rejected() {
        let mut sst = Sst::new(2);
        sst.insert(&StratumSelection::from_choices(&[Some(0)]));
    }
}
