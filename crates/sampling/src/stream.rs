//! Streaming stratified sampling.
//!
//! A reservoir "holds a simple random sample of the processed tuples at
//! any step of the scan" (§4.1) — so stratified sampling works over
//! *unbounded streams*, not just stored datasets: keep one reservoir per
//! stratum and snapshot whenever an answer is needed. Partial samplers
//! from several independent streams merge without bias through the
//! unified sampler, mirroring the distributed data-stream sampling line
//! of work the paper relates to (§2, Cormode et al.; Tirthapura &
//! Woodruff).

use crate::reservoir::Reservoir;
use crate::unified::{unified_sampler, IntermediateSample};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use stratmr_population::Individual;
use stratmr_query::{SsdAnswer, SsdQuery};

/// An incremental stratified sampler over one tuple stream.
#[derive(Debug, Clone)]
pub struct StreamingSampler {
    query: SsdQuery,
    reservoirs: Vec<Reservoir<Individual>>,
    rng: ChaCha8Rng,
    observed: u64,
}

impl StreamingSampler {
    /// Start sampling for `query` with a deterministic seed.
    pub fn new(query: SsdQuery, seed: u64) -> Self {
        let reservoirs = query
            .constraints()
            .iter()
            .map(|s| Reservoir::new(s.frequency))
            .collect();
        Self {
            query,
            reservoirs,
            rng: ChaCha8Rng::seed_from_u64(seed),
            observed: 0,
        }
    }

    /// The design being sampled.
    pub fn query(&self) -> &SsdQuery {
        &self.query
    }

    /// Feed the next tuple of the stream.
    pub fn observe(&mut self, t: &Individual) {
        self.observed += 1;
        if let Some(k) = self.query.matching_stratum(t) {
            self.reservoirs[k].observe(t.clone(), &mut self.rng);
        }
    }

    /// Tuples observed so far (matching or not).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Tuples observed so far in stratum `k`.
    pub fn stratum_seen(&self, k: usize) -> usize {
        self.reservoirs[k].seen()
    }

    /// A valid stratified sample of everything observed so far.
    pub fn snapshot(&self) -> SsdAnswer {
        SsdAnswer::from_strata(self.reservoirs.iter().map(|r| r.items().to_vec()).collect())
    }

    /// Finish the stream, producing the final answer.
    pub fn finish(self) -> SsdAnswer {
        SsdAnswer::from_strata(
            self.reservoirs
                .into_iter()
                .map(|r| r.into_parts().0)
                .collect(),
        )
    }

    /// Export the per-stratum intermediate samples `(S̄, N̄)` for an
    /// unbiased merge with other streams' samplers.
    pub fn into_partials(self) -> Vec<IntermediateSample<Individual>> {
        self.reservoirs
            .into_iter()
            .map(|r| {
                let (sample, seen) = r.into_parts();
                IntermediateSample::new(sample, seen)
            })
            .collect()
    }
}

/// Merge the partial samplers of several *disjoint* streams into one
/// unbiased stratified sample (Algorithm 1 per stratum).
///
/// # Panics
/// Panics when the samplers were built for designs of different arity.
pub fn merge_streams(
    query: &SsdQuery,
    partials: Vec<Vec<IntermediateSample<Individual>>>,
    seed: u64,
) -> SsdAnswer {
    for p in &partials {
        assert_eq!(p.len(), query.len(), "sampler arity mismatch");
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut strata = Vec::with_capacity(query.len());
    // regroup: stratum k takes the k-th partial of every stream
    let mut per_stream: Vec<_> = partials.into_iter().map(Vec::into_iter).collect();
    for s in query.constraints() {
        let inputs: Vec<IntermediateSample<Individual>> = per_stream
            .iter_mut()
            .map(|it| it.next().expect("arity checked above"))
            .collect();
        strata.push(unified_sampler(inputs, s.frequency, &mut rng));
    }
    SsdAnswer::from_strata(strata)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{chi2_critical_999, chi2_uniform};
    use stratmr_population::{AttrDef, AttrId, Schema};
    use stratmr_query::{Formula, StratumConstraint};

    fn x() -> AttrId {
        AttrId(0)
    }

    fn query(f1: usize, f2: usize) -> SsdQuery {
        let _ = Schema::new(vec![AttrDef::numeric("x", 0, 99)]);
        SsdQuery::new(vec![
            StratumConstraint::new(Formula::lt(x(), 50), f1),
            StratumConstraint::new(Formula::ge(x(), 50), f2),
        ])
    }

    fn ind(id: u64, v: i64) -> Individual {
        Individual::new(id, vec![v], 0)
    }

    #[test]
    fn snapshots_are_valid_at_every_prefix() {
        let mut sampler = StreamingSampler::new(query(3, 2), 1);
        for i in 0..100u64 {
            sampler.observe(&ind(i, (i % 100) as i64));
            let snap = sampler.snapshot();
            let low_seen = sampler.stratum_seen(0);
            let high_seen = sampler.stratum_seen(1);
            assert_eq!(snap.stratum(0).len(), low_seen.min(3));
            assert_eq!(snap.stratum(1).len(), high_seen.min(2));
            let q = sampler.query().clone();
            assert!(snap.satisfies_clamped(&q, Some(&[low_seen, high_seen])));
        }
        assert_eq!(sampler.observed(), 100);
        let final_answer = sampler.finish();
        assert_eq!(final_answer.len(), 5);
    }

    #[test]
    fn merged_streams_are_unbiased() {
        // two disjoint streams of very different sizes: 20 and 80 tuples
        // in the same stratum; the merge must be uniform over all 100
        let q = SsdQuery::new(vec![StratumConstraint::new(Formula::lt(x(), 100), 2)]);
        let trials = 20_000;
        let mut counts = vec![0u64; 100];
        for s in 0..trials {
            let mut a = StreamingSampler::new(q.clone(), s * 2);
            for i in 0..20u64 {
                a.observe(&ind(i, 0));
            }
            let mut b = StreamingSampler::new(q.clone(), s * 2 + 1);
            for i in 20..100u64 {
                b.observe(&ind(i, 0));
            }
            let merged = merge_streams(&q, vec![a.into_partials(), b.into_partials()], s);
            assert_eq!(merged.stratum(0).len(), 2);
            for t in merged.stratum(0) {
                counts[t.id as usize] += 1;
            }
        }
        let chi2 = chi2_uniform(&counts);
        let crit = chi2_critical_999(99);
        assert!(chi2 < crit, "merged stream sample biased: {chi2} >= {crit}");
    }

    #[test]
    fn merge_of_deficient_streams_returns_everything() {
        let q = SsdQuery::new(vec![StratumConstraint::new(Formula::lt(x(), 100), 10)]);
        let mut a = StreamingSampler::new(q.clone(), 0);
        a.observe(&ind(1, 5));
        let mut b = StreamingSampler::new(q.clone(), 1);
        b.observe(&ind(2, 6));
        let merged = merge_streams(&q, vec![a.into_partials(), b.into_partials()], 2);
        assert_eq!(merged.stratum(0).len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn mismatched_partials_rejected() {
        let q = query(1, 1);
        merge_streams(&q, vec![vec![]], 0);
    }
}
