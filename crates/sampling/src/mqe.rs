//! MR-MQE — answering many SSD queries in one pass (§5.1).
//!
//! Running MR-SQE once per SSD would scan the dataset `n` times. MR-MQE
//! instead keys the intermediate pairs by `(Q_i, s_k)`: the map phase
//! emits one pair per query a tuple matches, and the combine/reduce
//! phases are exactly MR-SQE's, applied per `(query, stratum)` key.
//! Semantically equivalent to `n` independent MR-SQE runs, so it answers
//! the MSSD query — but oblivious to survey costs (no sharing
//! optimization); the paper uses it as the cost benchmark for MR-CPS and
//! as CPS's representative first phase.

use crate::obs::StratumCounters;
use crate::reservoir::Reservoir;
use crate::unified::{unified_sampler, IntermediateSample};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;
use stratmr_mapreduce::{Cluster, CombineJob, Emitter, InputSplit, JobError, JobStats, TaskCtx};
use stratmr_population::{DistributedDataset, Individual};
use stratmr_query::{MssdAnswer, SsdAnswer, SsdQuery, StratumId};
use stratmr_telemetry::Registry;

/// Intermediate key: `(query index, stratum index)`.
pub type QueryStratum = (usize, StratumId);

/// The MR-MQE job over a set of SSD queries.
///
/// `exclusions[i]` (optional) is a set of individual ids that must not be
/// sampled for query `i` — used by MR-CPS's residual phase to top up
/// answers without duplicating already-selected individuals.
pub struct MqeJob<'a> {
    queries: &'a [SsdQuery],
    exclusions: Option<&'a [HashSet<u64>]>,
    counters: Option<Vec<StratumCounters>>,
}

impl<'a> MqeJob<'a> {
    /// Build the job for a set of SSD queries.
    pub fn new(queries: &'a [SsdQuery]) -> Self {
        Self {
            queries,
            exclusions: None,
            counters: None,
        }
    }

    /// Exclude, per query, individuals that must not be selected.
    ///
    /// # Panics
    /// Panics if `exclusions.len() != queries.len()`.
    pub fn with_exclusions(mut self, exclusions: &'a [HashSet<u64>]) -> Self {
        assert_eq!(exclusions.len(), self.queries.len());
        self.exclusions = Some(exclusions);
        self
    }

    /// Emit `mqe.q<i>.s<k>.{requested,candidates,sampled,rejected}`
    /// counters into `registry`, one quadruple per `(query, stratum)`
    /// pair.
    pub fn with_telemetry(mut self, registry: &Registry) -> Self {
        self.counters = Some(
            self.queries
                .iter()
                .enumerate()
                .map(|(i, q)| {
                    let counters =
                        StratumCounters::per_stratum(registry, &format!("mqe.q{i}"), q.len());
                    for k in 0..q.len() {
                        counters.request(k, q.stratum(k).frequency as u64);
                    }
                    counters
                })
                .collect(),
        );
        self
    }
}

impl CombineJob for MqeJob<'_> {
    type Input = Individual;
    type Key = QueryStratum;
    type MapOut = Individual;
    type CombOut = IntermediateSample<Individual>;
    type ReduceOut = Vec<Individual>;

    fn map(&self, _ctx: &TaskCtx, t: &Individual, out: &mut Emitter<QueryStratum, Individual>) {
        for (i, q) in self.queries.iter().enumerate() {
            if let Some(ex) = self.exclusions {
                if ex[i].contains(&t.id) {
                    continue;
                }
            }
            if let Some(k) = q.matching_stratum(t) {
                if let Some(c) = &self.counters {
                    c[i].candidate(k);
                }
                out.emit((i, k), t.clone());
            }
        }
    }

    fn combine(
        &self,
        ctx: &TaskCtx,
        key: &QueryStratum,
        values: &mut dyn Iterator<Item = Individual>,
    ) -> IntermediateSample<Individual> {
        let f = self.queries[key.0].stratum(key.1).frequency;
        let mut rng = ChaCha8Rng::seed_from_u64(ctx.seed);
        let mut reservoir = Reservoir::new(f);
        for t in values {
            reservoir.observe(t, &mut rng);
        }
        let (sample, seen) = reservoir.into_parts();
        IntermediateSample::new(sample, seen)
    }

    fn reduce(
        &self,
        ctx: &TaskCtx,
        key: &QueryStratum,
        values: Vec<IntermediateSample<Individual>>,
    ) -> Vec<Individual> {
        let f = self.queries[key.0].stratum(key.1).frequency;
        let mut rng = ChaCha8Rng::seed_from_u64(ctx.seed);
        let seen: u64 = values.iter().map(|s| s.drawn_from as u64).sum();
        let sample = unified_sampler(values, f, &mut rng);
        if let Some(c) = &self.counters {
            c[key.0].reduced(key.1, sample.len() as u64, seen);
        }
        sample
    }

    fn input_bytes(&self, t: &Individual) -> u64 {
        t.payload_bytes as u64
    }

    fn comb_bytes(&self, _key: &QueryStratum, s: &IntermediateSample<Individual>) -> u64 {
        s.sample.iter().map(crate::input::wire_bytes).sum::<u64>() + 16
    }
}

/// Result of an MR-MQE run.
#[derive(Debug, Clone)]
pub struct MqeRun {
    /// One answer per SSD query.
    pub answer: MssdAnswer,
    /// MapReduce execution statistics.
    pub stats: JobStats,
}

/// Run MR-MQE on pre-built input splits, with optional per-query
/// exclusion sets.
pub fn mr_mqe_on_splits(
    cluster: &Cluster,
    splits: &[InputSplit<Individual>],
    queries: &[SsdQuery],
    exclusions: Option<&[HashSet<u64>]>,
    seed: u64,
) -> MqeRun {
    match try_mr_mqe_on_splits(cluster, splits, queries, exclusions, seed) {
        Ok(run) => run,
        Err(e) => panic!("mapreduce job failed: {e}"),
    }
}

/// Fault-aware [`mr_mqe_on_splits`]: surfaces scheduling failures as
/// [`JobError`] instead of panicking.
pub fn try_mr_mqe_on_splits(
    cluster: &Cluster,
    splits: &[InputSplit<Individual>],
    queries: &[SsdQuery],
    exclusions: Option<&[HashSet<u64>]>,
    seed: u64,
) -> Result<MqeRun, JobError> {
    let cluster = cluster.named_or("mqe");
    let _span = cluster.telemetry().map(|t| t.span("mqe.run"));
    let mut job = MqeJob::new(queries);
    if let Some(ex) = exclusions {
        job = job.with_exclusions(ex);
    }
    if let Some(registry) = cluster.telemetry() {
        job = job.with_telemetry(registry);
    }
    let out = cluster.try_run_with_combiner(&job, splits, seed)?;
    let mut answers: Vec<SsdAnswer> = queries.iter().map(|q| SsdAnswer::empty(q.len())).collect();
    for ((i, k), sample) in out.results {
        *answers[i].stratum_mut(k) = sample;
    }
    Ok(MqeRun {
        answer: MssdAnswer::new(answers),
        stats: out.stats,
    })
}

/// Run MR-MQE over a distributed dataset.
pub fn mr_mqe(
    cluster: &Cluster,
    data: &DistributedDataset,
    queries: &[SsdQuery],
    seed: u64,
) -> MqeRun {
    mr_mqe_on_splits(
        cluster,
        &crate::input::to_input_splits(data),
        queries,
        None,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sqe::mr_sqe;
    use stratmr_population::{AttrDef, AttrId, Dataset, Placement, Schema};
    use stratmr_query::{Formula, StratumConstraint};

    fn dataset(n: usize) -> Dataset {
        let schema = Schema::new(vec![AttrDef::numeric("x", 0, 99)]);
        let tuples = (0..n as u64)
            .map(|i| Individual::new(i, vec![(i % 100) as i64], 1000))
            .collect();
        Dataset::new(schema, tuples)
    }

    fn queries() -> Vec<SsdQuery> {
        let x = AttrId(0);
        vec![
            SsdQuery::new(vec![
                StratumConstraint::new(Formula::lt(x, 50), 4),
                StratumConstraint::new(Formula::ge(x, 50), 6),
            ]),
            SsdQuery::new(vec![
                StratumConstraint::new(Formula::lt(x, 20), 3),
                StratumConstraint::new(Formula::between(x, 20, 79), 5),
                StratumConstraint::new(Formula::ge(x, 80), 2),
            ]),
        ]
    }

    #[test]
    fn every_query_is_satisfied() {
        let data = dataset(2000).distribute(4, 8, Placement::RoundRobin);
        let cluster = Cluster::new(4);
        let qs = queries();
        let run = mr_mqe(&cluster, &data, &qs, 5);
        for (i, q) in qs.iter().enumerate() {
            assert!(run.answer.answer(i).satisfies(q), "query {i} unsatisfied");
        }
    }

    #[test]
    fn single_pass_scans_data_once() {
        let data = dataset(1000).distribute(2, 4, Placement::RoundRobin);
        let cluster = Cluster::new(2);
        let qs = queries();
        let run = mr_mqe(&cluster, &data, &qs, 5);
        // one scan: map input records equals the dataset size, even with
        // two queries (each tuple emits up to 2 pairs instead)
        assert_eq!(run.stats.map_input_records, 1000);
        assert_eq!(run.stats.map_output_records, 2000);
    }

    #[test]
    fn equivalent_to_independent_sqe_runs_statistically() {
        // Same stratum constraint as a solo SQE run: answer sizes match.
        let data = dataset(800).distribute(3, 6, Placement::RoundRobin);
        let cluster = Cluster::new(3);
        let qs = queries();
        let mqe = mr_mqe(&cluster, &data, &qs, 8);
        for (i, q) in qs.iter().enumerate() {
            let solo = mr_sqe(&cluster, &data, q, 8);
            for k in 0..q.len() {
                assert_eq!(
                    mqe.answer.answer(i).stratum(k).len(),
                    solo.answer.stratum(k).len()
                );
            }
        }
    }

    #[test]
    fn telemetry_counts_per_query_strata() {
        use stratmr_telemetry::Registry;
        let registry = Registry::new();
        let data = dataset(1000).distribute(2, 4, Placement::RoundRobin);
        let cluster = Cluster::new(2).with_telemetry(registry.clone());
        let qs = queries();
        let run = mr_mqe(&cluster, &data, &qs, 5);
        let snap = registry.snapshot();
        let mut candidates_total = 0;
        for (i, q) in qs.iter().enumerate() {
            for k in 0..q.len() {
                let sampled = snap.counter(&format!("mqe.q{i}.s{k}.sampled"));
                let rejected = snap.counter(&format!("mqe.q{i}.s{k}.rejected"));
                let candidates = snap.counter(&format!("mqe.q{i}.s{k}.candidates"));
                assert_eq!(sampled, run.answer.answer(i).stratum(k).len() as u64);
                assert_eq!(candidates, sampled + rejected);
                candidates_total += candidates;
            }
        }
        // one emitted pair per (tuple, matching query)
        assert_eq!(candidates_total, snap.counter("mr.map.output_records"));
        assert_eq!(snap.span_calls("mqe.run"), 1);
        assert_eq!(snap.span_calls("mqe.run/mr.job"), 1);
    }

    #[test]
    fn exclusions_are_respected() {
        let data = dataset(200).distribute(2, 4, Placement::RoundRobin);
        let cluster = Cluster::new(2);
        let x = AttrId(0);
        let qs = vec![
            SsdQuery::new(vec![StratumConstraint::new(Formula::lt(x, 50), 10)]),
            SsdQuery::new(vec![StratumConstraint::new(Formula::lt(x, 50), 10)]),
        ];
        // exclude ids 0..80 for query 0 only
        let ex0: HashSet<u64> = (0..80).collect();
        let exclusions = vec![ex0.clone(), HashSet::new()];
        let splits = crate::input::to_input_splits(&data);
        let run = mr_mqe_on_splits(&cluster, &splits, &qs, Some(&exclusions), 3);
        assert!(run.answer.answer(0).iter().all(|t| !ex0.contains(&t.id)));
        assert_eq!(run.answer.answer(0).len(), 10);
        assert_eq!(run.answer.answer(1).len(), 10);
    }

    #[test]
    fn sharing_between_independent_answers_is_rare() {
        // MR-MQE selects independently per query: overlap happens only by
        // chance. With 10 of 100 eligible individuals per query, expected
        // overlap is ~1 individual.
        let data = dataset(100).distribute(2, 4, Placement::RoundRobin);
        let cluster = Cluster::new(2);
        let x = AttrId(0);
        let qs = vec![
            SsdQuery::new(vec![StratumConstraint::new(Formula::lt(x, 100), 10)]),
            SsdQuery::new(vec![StratumConstraint::new(Formula::lt(x, 100), 10)]),
        ];
        let mut shared_total = 0usize;
        let runs = 50;
        for s in 0..runs {
            let run = mr_mqe(&cluster, &data, &qs, s);
            let hist = run.answer.sharing_histogram(2);
            shared_total += hist[1];
        }
        let avg = shared_total as f64 / runs as f64;
        assert!(
            (0.2..3.0).contains(&avg),
            "expected ~1 shared individual on average, got {avg}"
        );
    }
}
