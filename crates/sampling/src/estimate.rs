//! Estimating population statistics from stratified samples.
//!
//! The paper's motivation (Example 1) is that a stratified sample
//! supports the same estimates as a much larger simple random sample.
//! This module closes the loop: given an [`SsdAnswer`] and the stratum
//! population sizes, it computes the classic stratified estimators
//!
//! * mean:    `ȳ_st = Σ_k W_k ȳ_k` with `W_k = N_k / N`,
//! * total:   `N · ȳ_st`,
//! * variance of the mean (with finite-population correction):
//!   `Var(ȳ_st) = Σ_k W_k² (1 − f_k) s_k² / n_k`,
//!
//! plus the corresponding simple-random-sample estimator, so the *design
//! effect* (variance ratio) of a stratification can be measured.

use stratmr_population::{AttrId, Individual};
use stratmr_query::SsdAnswer;

/// Sampling fractions above this threshold trigger the
/// finite-population correction in [`Estimate::interval`].
pub const FPC_THRESHOLD: f64 = 0.05;

/// A point estimate with its estimated standard error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The point estimate.
    pub value: f64,
    /// Estimated standard error of the estimate.
    pub std_error: f64,
    /// Overall sampling fraction `n / N` behind the estimate, for the
    /// finite-population correction in [`Estimate::interval`]. Leave at
    /// `0.0` when the standard error already carries its own FPC (the
    /// stratified estimators below correct per stratum).
    pub sampling_fraction: f64,
    /// True when the design was degenerate — some stratum with a
    /// nonzero population contributed no sample, so its weight enters
    /// the point estimate with an unknowable error. Surfaced in the
    /// audit [`crate::audit::QualityReport`].
    pub degenerate: bool,
}

impl Estimate {
    /// An estimate whose standard error needs no further correction.
    pub fn new(value: f64, std_error: f64) -> Self {
        Estimate {
            value,
            std_error,
            sampling_fraction: 0.0,
            degenerate: false,
        }
    }

    /// Attach the overall sampling fraction `n / N` so
    /// [`Estimate::interval`] can apply the finite-population
    /// correction.
    pub fn with_sampling_fraction(mut self, fraction: f64) -> Self {
        self.sampling_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Mark the estimate as degenerate (see the field docs).
    pub fn flag_degenerate(mut self) -> Self {
        self.degenerate = true;
        self
    }

    /// A two-sided confidence interval at the given z-score (1.96 ≈ 95%).
    ///
    /// When the recorded sampling fraction exceeds [`FPC_THRESHOLD`]
    /// (the classic 5% rule), the half-width is shrunk by the
    /// finite-population correction `sqrt(1 − n/N)` — sampling a large
    /// share of a finite population leaves less room for error than the
    /// infinite-population formula claims.
    pub fn interval(&self, z: f64) -> (f64, f64) {
        let mut half = z * self.std_error;
        if self.sampling_fraction > FPC_THRESHOLD {
            half *= (1.0 - self.sampling_fraction).max(0.0).sqrt();
        }
        (self.value - half, self.value + half)
    }
}

/// Mean and (population) variance of one attribute over a set of tuples.
fn moments(tuples: &[Individual], attr: AttrId) -> (f64, f64, usize) {
    let n = tuples.len();
    if n == 0 {
        return (0.0, 0.0, 0);
    }
    let mean = tuples.iter().map(|t| t.get(attr) as f64).sum::<f64>() / n as f64;
    if n == 1 {
        return (mean, 0.0, 1);
    }
    // unbiased sample variance
    let var = tuples
        .iter()
        .map(|t| (t.get(attr) as f64 - mean).powi(2))
        .sum::<f64>()
        / (n - 1) as f64;
    (mean, var, n)
}

/// Estimate the population mean of `attr` from a stratified sample.
///
/// `stratum_sizes[k]` is the population size `N_k` of stratum `k` (e.g.
/// from the Figure 4 counting job). A stratum with a nonzero population
/// but an empty sample cannot contribute — the estimate is returned
/// with its [`Estimate::degenerate`] flag set instead of dividing by
/// zero.
///
/// # Panics
/// Panics if the answer and `stratum_sizes` disagree on the number of
/// strata.
pub fn stratified_mean(answer: &SsdAnswer, stratum_sizes: &[usize], attr: AttrId) -> Estimate {
    assert_eq!(
        answer.num_strata(),
        stratum_sizes.len(),
        "stratum count mismatch"
    );
    let n_total: usize = stratum_sizes.iter().sum();
    if n_total == 0 {
        return Estimate::new(0.0, 0.0).flag_degenerate();
    }
    let mut mean = 0.0;
    let mut variance = 0.0;
    let mut degenerate = false;
    for (k, &n_k) in stratum_sizes.iter().enumerate() {
        if n_k == 0 {
            continue;
        }
        let w = n_k as f64 / n_total as f64;
        let (m_k, s2_k, n_sample) = moments(answer.stratum(k), attr);
        mean += w * m_k;
        if n_sample > 0 {
            let fpc = 1.0 - n_sample as f64 / n_k as f64;
            variance += w * w * fpc.max(0.0) * s2_k / n_sample as f64;
        } else {
            degenerate = true;
        }
    }
    let est = Estimate::new(mean, variance.sqrt());
    if degenerate {
        est.flag_degenerate()
    } else {
        est
    }
}

/// Estimate the population total of `attr` from a stratified sample.
pub fn stratified_total(answer: &SsdAnswer, stratum_sizes: &[usize], attr: AttrId) -> Estimate {
    let n_total: usize = stratum_sizes.iter().sum();
    let mean = stratified_mean(answer, stratum_sizes, attr);
    Estimate {
        value: mean.value * n_total as f64,
        std_error: mean.std_error * n_total as f64,
        ..mean
    }
}

/// Estimate the population mean of `attr` from a *simple random sample*
/// of a population of size `population`, for comparison with the
/// stratified estimator.
pub fn srs_mean(sample: &[Individual], population: usize, attr: AttrId) -> Estimate {
    let (mean, var, n) = moments(sample, attr);
    if n == 0 {
        return Estimate::new(0.0, 0.0).flag_degenerate();
    }
    let fpc = 1.0 - n as f64 / population as f64;
    Estimate::new(mean, (fpc.max(0.0) * var / n as f64).sqrt())
}

/// Estimate the fraction of the population satisfying a predicate from a
/// stratified sample (proportion estimator; variance via `p(1−p)`).
pub fn stratified_proportion(
    answer: &SsdAnswer,
    stratum_sizes: &[usize],
    predicate: impl Fn(&Individual) -> bool,
) -> Estimate {
    assert_eq!(answer.num_strata(), stratum_sizes.len());
    let n_total: usize = stratum_sizes.iter().sum();
    if n_total == 0 {
        return Estimate::new(0.0, 0.0).flag_degenerate();
    }
    let mut p_est = 0.0;
    let mut variance = 0.0;
    let mut degenerate = false;
    for (k, &n_k) in stratum_sizes.iter().enumerate() {
        if n_k == 0 {
            continue;
        }
        let sample = answer.stratum(k);
        let n = sample.len();
        if n == 0 {
            degenerate = true;
            continue;
        }
        let hits = sample.iter().filter(|t| predicate(t)).count();
        let p_k = hits as f64 / n as f64;
        let w = n_k as f64 / n_total as f64;
        p_est += w * p_k;
        if n > 1 {
            let fpc = 1.0 - n as f64 / n_k as f64;
            variance += w * w * fpc.max(0.0) * p_k * (1.0 - p_k) / (n - 1) as f64;
        }
    }
    let est = Estimate::new(p_est, variance.sqrt());
    if degenerate {
        est.flag_degenerate()
    } else {
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reservoir::reservoir_sample;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn attr() -> AttrId {
        AttrId(0)
    }

    /// Two strata: values around 10 (N=900) and around 1000 (N=100).
    fn population() -> (Vec<Individual>, Vec<Individual>) {
        let common: Vec<Individual> = (0..900u64)
            .map(|i| Individual::new(i, vec![10 + (i % 5) as i64], 0))
            .collect();
        let rare: Vec<Individual> = (0..100u64)
            .map(|i| Individual::new(900 + i, vec![1000 + (i % 11) as i64], 0))
            .collect();
        (common, rare)
    }

    fn true_mean(groups: &[&[Individual]]) -> f64 {
        let all: Vec<f64> = groups
            .iter()
            .flat_map(|g| g.iter().map(|t| t.get(attr()) as f64))
            .collect();
        all.iter().sum::<f64>() / all.len() as f64
    }

    #[test]
    fn full_census_estimate_is_exact_with_zero_error() {
        let (common, rare) = population();
        let truth = true_mean(&[&common, &rare]);
        let answer = SsdAnswer::from_strata(vec![common, rare]);
        let est = stratified_mean(&answer, &[900, 100], attr());
        assert!((est.value - truth).abs() < 1e-9);
        assert!(est.std_error.abs() < 1e-9, "census has no sampling error");
    }

    #[test]
    fn stratified_estimate_is_accurate_from_small_sample() {
        let (common, rare) = population();
        let truth = true_mean(&[&common, &rare]);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // only 20 + 20 samples
        let s1 = reservoir_sample(common.iter().cloned(), 20, &mut rng).0;
        let s2 = reservoir_sample(rare.iter().cloned(), 20, &mut rng).0;
        let answer = SsdAnswer::from_strata(vec![s1, s2]);
        let est = stratified_mean(&answer, &[900, 100], attr());
        let (lo, hi) = est.interval(3.0);
        assert!(
            lo <= truth && truth <= hi,
            "truth {truth} outside [{lo}, {hi}]"
        );
        // small per-stratum spread → tight interval
        assert!(
            est.std_error < 2.0,
            "std error too large: {}",
            est.std_error
        );
    }

    #[test]
    fn stratification_beats_srs_on_example1_style_population() {
        // the rare high-value stratum makes SRS noisy: compare standard
        // errors at equal sample size (the paper's Example 1 argument)
        let (common, rare) = population();
        let all: Vec<Individual> = common.iter().chain(&rare).cloned().collect();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 40;
        // stratified: proportional-ish 36 / 4
        let s1 = reservoir_sample(common.iter().cloned(), 36, &mut rng).0;
        let s2 = reservoir_sample(rare.iter().cloned(), 4, &mut rng).0;
        let strat = stratified_mean(&SsdAnswer::from_strata(vec![s1, s2]), &[900, 100], attr());
        let srs = srs_mean(
            &reservoir_sample(all.iter().cloned(), n, &mut rng).0,
            1000,
            attr(),
        );
        assert!(
            strat.std_error < srs.std_error / 3.0,
            "stratification should slash the error: {} vs {}",
            strat.std_error,
            srs.std_error
        );
    }

    #[test]
    fn total_scales_mean_by_population() {
        let (common, rare) = population();
        let answer = SsdAnswer::from_strata(vec![common.clone(), rare.clone()]);
        let mean = stratified_mean(&answer, &[900, 100], attr());
        let total = stratified_total(&answer, &[900, 100], attr());
        assert!((total.value - 1000.0 * mean.value).abs() < 1e-6);
    }

    #[test]
    fn proportion_estimator_recovers_rates() {
        let (common, rare) = population();
        let answer = SsdAnswer::from_strata(vec![common, rare]);
        // the rare stratum is exactly 10% of the population
        let est = stratified_proportion(&answer, &[900, 100], |t| t.get(attr()) >= 1000);
        assert!((est.value - 0.1).abs() < 1e-9);
        assert!(est.std_error.abs() < 1e-9);
    }

    #[test]
    fn empty_answer_is_harmless() {
        let answer = SsdAnswer::empty(2);
        let est = stratified_mean(&answer, &[10, 20], attr());
        assert_eq!(est.value, 0.0);
        let p = stratified_proportion(&answer, &[10, 20], |_| true);
        assert_eq!(p.value, 0.0);
    }

    #[test]
    #[should_panic(expected = "stratum count mismatch")]
    fn mismatched_sizes_rejected() {
        stratified_mean(&SsdAnswer::empty(2), &[1], attr());
    }

    #[test]
    fn interval_applies_fpc_above_five_percent() {
        // hand-computed: value 50, se 10, n/N = 0.36
        //   → half-width 2 · 10 · sqrt(1 − 0.36) = 20 · 0.8 = 16
        let est = Estimate::new(50.0, 10.0).with_sampling_fraction(0.36);
        let (lo, hi) = est.interval(2.0);
        assert!((lo - 34.0).abs() < 1e-12, "lo = {lo}");
        assert!((hi - 66.0).abs() < 1e-12, "hi = {hi}");
        // below the 5% threshold the classic interval is kept
        let small = Estimate::new(50.0, 10.0).with_sampling_fraction(0.04);
        assert_eq!(small.interval(2.0), (30.0, 70.0));
        // a census (n = N) collapses the interval onto the estimate
        let census = Estimate::new(50.0, 10.0).with_sampling_fraction(1.0);
        assert_eq!(census.interval(2.0), (50.0, 50.0));
    }

    #[test]
    fn empty_stratum_flags_degenerate_instead_of_nan() {
        let (common, _) = population();
        // stratum 1 has population 100 but no sample at all
        let answer = SsdAnswer::from_strata(vec![common, Vec::new()]);
        let est = stratified_mean(&answer, &[900, 100], attr());
        assert!(est.degenerate, "missing stratum must be flagged");
        assert!(est.value.is_finite() && est.std_error.is_finite());
        let p = stratified_proportion(&answer, &[900, 100], |t| t.get(attr()) >= 1000);
        assert!(p.degenerate);
        assert!(p.value.is_finite() && p.std_error.is_finite());
        // fully populated designs stay unflagged
        let (common, rare) = population();
        let full = SsdAnswer::from_strata(vec![common, rare]);
        assert!(!stratified_mean(&full, &[900, 100], attr()).degenerate);
        // the degenerate flag propagates through the total estimator
        assert!(stratified_total(&answer, &[900, 100], attr()).degenerate);
    }
}
