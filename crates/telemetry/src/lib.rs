//! Lightweight, dependency-free observability for the MR-SQE/CPS stack.
//!
//! A [`Registry`] holds named [`Counter`]s, [`Gauge`]s and
//! [`Histogram`]s plus a tree of phase [`Span`]s. Registries are cheap
//! to clone (all clones share state) and safe to use from rayon worker
//! threads: counter increments and histogram records are plain atomic
//! operations after the first lookup, and name lookups take a short
//! registry-level lock only on first creation of a metric.
//!
//! # Determinism contract
//!
//! Exports deliberately segregate host-dependent measurements from
//! deterministic ones so that a fixed-seed run can be golden-file
//! tested byte for byte:
//!
//! * counters, gauges, histograms and span *call counts* depend only on
//!   the values the instrumented code feeds them (same inputs ⇒ same
//!   bytes — callers must not record wall-clock-derived values if they
//!   want byte-stable exports);
//! * wall-clock span durations live exclusively under the `"host"`
//!   subobject of the JSON export ([`Snapshot::to_json`]) and can be
//!   stripped with [`Snapshot::without_host`].
//!
//! Histograms record `u64` values and aggregate in integer arithmetic,
//! so their sums are independent of thread interleaving; gauges are
//! `f64` but are meant to be set from the driver thread (e.g. simulated
//! times), not raced on.
//!
//! Span nesting is tracked per thread: a span opened while another span
//! on the *same thread* is alive becomes its child (its path is
//! `parent/child`). Spans opened on rayon workers start a fresh root on
//! that thread.

#![warn(missing_docs)]

mod trace;

pub use trace::{JobTrace, TraceEvent, TracePhase, TraceSink};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A monotonically increasing `u64` metric.
///
/// Cloning is cheap; all clones address the same underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` metric (stored as bits in an atomic).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// An integer-valued distribution: count / sum / min / max.
///
/// Values are `u64` and aggregation is integer arithmetic, so the
/// result is independent of the order in which threads record.
#[derive(Clone, Debug)]
pub struct Histogram {
    count: Arc<AtomicU64>,
    sum: Arc<AtomicU64>,
    /// min is stored as the raw value; u64::MAX means "empty".
    min: Arc<AtomicU64>,
    max: Arc<AtomicU64>,
    /// log2 bucket counts: bucket 0 holds value 0, bucket k ≥ 1 holds
    /// values in [2^(k-1), 2^k - 1]. Enables order-of-magnitude
    /// percentile estimates without per-value storage.
    buckets: Arc<[AtomicU64; BUCKETS]>,
}

/// Number of log2 histogram buckets (value 0 + one per bit of u64).
const BUCKETS: usize = 65;

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: Arc::new(AtomicU64::new(0)),
            sum: Arc::new(AtomicU64::new(0)),
            min: Arc::new(AtomicU64::new(u64::MAX)),
            max: Arc::new(AtomicU64::new(0)),
            buckets: Arc::new(std::array::from_fn(|_| AtomicU64::new(0))),
        }
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Immutable view of the current aggregate.
    pub fn stats(&self) -> HistogramStats {
        let count = self.count.load(Ordering::Relaxed);
        HistogramStats {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Aggregate view of a [`Histogram`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramStats {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// log2 bucket counts (see [`Histogram`]).
    pub buckets: [u64; BUCKETS],
}

impl HistogramStats {
    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile estimate from the log2 buckets: the upper edge of the
    /// bucket holding the rank-`⌈q·count⌉` observation, clamped into
    /// `[min, max]` (so a single-valued histogram reports that value
    /// exactly). `q` is clamped into `[0, 1]`; returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let edge = if k == 0 {
                    0
                } else if k >= 64 {
                    u64::MAX
                } else {
                    (1u64 << k) - 1
                };
                return edge.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate (see [`HistogramStats::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate (see [`HistogramStats::quantile`]).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate (see [`HistogramStats::quantile`]).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[derive(Clone, Copy, Debug, Default, PartialEq)]
struct SpanStat {
    calls: u64,
    wall_secs: f64,
}

#[derive(Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    spans: Mutex<BTreeMap<String, SpanStat>>,
}

thread_local! {
    /// Stack of open span paths on this thread, per registry identity.
    static SPAN_STACK: RefCell<Vec<(usize, String)>> = const { RefCell::new(Vec::new()) };
}

/// A shared, thread-safe collection of named metrics and spans.
///
/// `Registry` is `Clone`; clones are handles to the same store.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn identity(&self) -> usize {
        Arc::as_ptr(&self.inner) as usize
    }

    /// Get or create the counter called `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Add `n` to the counter called `name`.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Get or create the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.gauges.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Set the gauge called `name`.
    pub fn set_gauge(&self, name: &str, v: f64) {
        self.gauge(name).set(v);
    }

    /// Get or create the histogram called `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.inner.histograms.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Record `v` into the histogram called `name`.
    pub fn record(&self, name: &str, v: u64) {
        self.histogram(name).record(v);
    }

    /// Open a scoped timer. Dropping the returned [`Span`] records one
    /// call and the elapsed wall time under the span's `/`-joined path.
    pub fn span(&self, name: &str) -> Span {
        let id = self.identity();
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.iter().rev().find(|(sid, _)| *sid == id) {
                Some((_, parent)) => format!("{parent}/{name}"),
                None => name.to_string(),
            };
            stack.push((id, path.clone()));
            path
        });
        Span {
            registry: self.clone(),
            path,
            start: Instant::now(),
            closed: false,
        }
    }

    /// Record an externally measured interval as one call of a span at
    /// `path`, without opening a scope. Useful for durations measured
    /// on worker threads that should be attributed to a driver-side
    /// phase (pass an explicit `parent/child` path).
    pub fn observe_span(&self, path: &str, wall_secs: f64) {
        let mut spans = self.inner.spans.lock().unwrap();
        let stat = spans.entry(path.to_string()).or_default();
        stat.calls += 1;
        stat.wall_secs += wall_secs;
    }

    fn close_span(&self, path: &str, wall_secs: f64) {
        let id = self.identity();
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|(sid, p)| *sid == id && p == path) {
                stack.remove(pos);
            }
        });
        let mut spans = self.inner.spans.lock().unwrap();
        let stat = spans.entry(path.to_string()).or_default();
        stat.calls += 1;
        stat.wall_secs += wall_secs;
    }

    /// Take a point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.stats()))
            .collect();
        let spans = self
            .inner
            .spans
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
            spans,
        }
    }
}

/// A scoped phase timer; see [`Registry::span`].
///
/// The span closes (and records) on drop, or explicitly via
/// [`Span::close`].
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct Span {
    registry: Registry,
    path: String,
    start: Instant,
    closed: bool,
}

impl Span {
    /// This span's `/`-joined path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Close the span now instead of at end of scope.
    pub fn close(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if !self.closed {
            self.closed = true;
            self.registry
                .close_span(&self.path, self.start.elapsed().as_secs_f64());
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Point-in-time copy of a [`Registry`], ready for export.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistogramStats>,
    spans: BTreeMap<String, SpanStat>,
}

impl Snapshot {
    /// Value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of a gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Aggregate of a histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<HistogramStats> {
        self.histograms.get(name).copied()
    }

    /// Number of times the span at `path` was closed.
    pub fn span_calls(&self, path: &str) -> u64 {
        self.spans.get(path).map(|s| s.calls).unwrap_or(0)
    }

    /// All counter names, in sorted order.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    /// All span paths, in sorted order.
    pub fn span_paths(&self) -> impl Iterator<Item = &str> {
        self.spans.keys().map(String::as_str)
    }

    /// Drop every host-dependent field (wall-clock durations), keeping
    /// only data that is a pure function of the computation.
    pub fn without_host(mut self) -> Snapshot {
        for stat in self.spans.values_mut() {
            stat.wall_secs = 0.0;
        }
        self
    }

    /// Deterministic part of the snapshot compared field by field,
    /// ignoring everything under `"host"`.
    pub fn deterministic_eq(&self, other: &Snapshot) -> bool {
        self.clone().without_host() == other.clone().without_host()
    }

    /// Render as JSON.
    ///
    /// Layout: `counters`, `gauges`, `histograms` and `spans` (call
    /// counts only) are deterministic for a fixed seed; every
    /// wall-clock measurement is confined to the trailing `"host"`
    /// subobject.
    ///
    /// The export is built for clean line diffs: map keys come from
    /// `BTreeMap`s (sorted), the keys of every histogram object are
    /// alphabetical, and every float prints with exactly six fractional
    /// digits, so equal values always serialise to identical lines.
    pub fn to_json(&self) -> String {
        self.to_json_with_meta(None)
    }

    /// Render as JSON with a caller-supplied `meta` header as the first
    /// key (see [`Snapshot::to_json`] for the layout of the rest).
    ///
    /// `meta_json` must be a pre-rendered, single-line JSON value; it is
    /// embedded verbatim so the telemetry crate stays agnostic of what
    /// the header contains (git SHA, config, seed, …).
    pub fn to_json_with_meta(&self, meta_json: Option<&str>) -> String {
        let mut out = String::from("{\n");
        if let Some(meta) = meta_json {
            let _ = writeln!(out, "  \"meta\": {meta},");
        }
        out.push_str("  \"counters\": {");
        write_map(&mut out, self.counters.iter(), |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str(",\n  \"gauges\": {");
        write_map(&mut out, self.gauges.iter(), |out, v| {
            write_json_f64(out, *v);
        });
        out.push_str(",\n  \"histograms\": {");
        write_map(&mut out, self.histograms.iter(), |out, h| {
            // alphabetical keys, fixed-precision mean: clean line diffs
            let _ = write!(
                out,
                "{{\"count\": {}, \"max\": {}, \"mean\": ",
                h.count, h.max
            );
            write_json_f64(out, h.mean());
            let _ = write!(
                out,
                ", \"min\": {}, \"p50\": {}, \"p95\": {}, \"sum\": {}}}",
                h.min,
                h.p50(),
                h.p95(),
                h.sum
            );
        });
        out.push_str(",\n  \"spans\": {");
        write_map(&mut out, self.spans.iter(), |out, s| {
            let _ = write!(out, "{}", s.calls);
        });
        out.push_str(",\n  \"host\": {\n    \"span_wall_secs\": {");
        write_map_indented(&mut out, self.spans.iter(), "      ", |out, s| {
            write_json_f64(out, s.wall_secs);
        });
        out.push_str("\n  }\n}\n");
        out
    }

    /// Render as an aligned human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let w = self.counters.keys().map(String::len).max().unwrap_or(0);
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<w$}  {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            let w = self.gauges.keys().map(String::len).max().unwrap_or(0);
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "  {k:<w$}  {v}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            let w = self.histograms.keys().map(String::len).max().unwrap_or(0);
            for (k, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {k:<w$}  count={} sum={} min={} max={} mean={:.2} p50={} p99={}",
                    h.count,
                    h.sum,
                    h.min,
                    h.max,
                    h.mean(),
                    h.p50(),
                    h.p99()
                );
            }
        }
        if !self.spans.is_empty() {
            // heaviest spans first, so the report leads with where the
            // time actually went; ties (e.g. zeroed host fields) fall
            // back to path order
            out.push_str("spans:\n");
            let w = self.spans.keys().map(String::len).max().unwrap_or(0);
            let mut spans: Vec<(&String, &SpanStat)> = self.spans.iter().collect();
            spans.sort_by(|(ka, sa), (kb, sb)| {
                sb.wall_secs
                    .partial_cmp(&sa.wall_secs)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| ka.cmp(kb))
            });
            for (k, s) in spans {
                let _ = writeln!(out, "  {k:<w$}  calls={} wall={:.6}s", s.calls, s.wall_secs);
            }
        }
        out
    }
}

fn write_map<'a, V: 'a>(
    out: &mut String,
    entries: impl ExactSizeIterator<Item = (&'a String, V)>,
    mut write_value: impl FnMut(&mut String, V),
) {
    if entries.len() == 0 {
        out.push('}');
        return;
    }
    let mut first = true;
    for (key, value) in entries {
        out.push_str(if first { "\n" } else { ",\n" });
        first = false;
        let _ = write!(out, "    {key:?}: ");
        write_value(out, value);
    }
    out.push_str("\n  }");
}

fn write_map_indented<'a, V: 'a>(
    out: &mut String,
    entries: impl ExactSizeIterator<Item = (&'a String, V)>,
    indent: &str,
    mut write_value: impl FnMut(&mut String, V),
) {
    if entries.len() == 0 {
        out.push('}');
        return;
    }
    let mut first = true;
    for (key, value) in entries {
        out.push_str(if first { "\n" } else { ",\n" });
        first = false;
        let _ = write!(out, "{indent}{key:?}: ");
        write_value(out, value);
    }
    let closing_indent = &indent[..indent.len().saturating_sub(2)];
    let _ = write!(out, "\n{closing_indent}}}");
}

/// Write a float with exactly six fractional digits (or `null` for
/// non-finite values). Fixed precision keeps exports line-diffable:
/// equal values always render to identical bytes, and a value that
/// moves changes exactly one line.
fn write_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:.6}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_are_shared_across_clones_and_threads() {
        let reg = Registry::new();
        let c = reg.counter("hits");
        thread::scope(|s| {
            for _ in 0..8 {
                let reg = reg.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        reg.counter("hits").inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(reg.snapshot().counter("hits"), 8000);
    }

    #[test]
    fn histogram_aggregates_in_integers() {
        let reg = Registry::new();
        thread::scope(|s| {
            for t in 0..4 {
                let reg = reg.clone();
                s.spawn(move || {
                    for v in 0..100u64 {
                        reg.record("vals", v + 100 * t);
                    }
                });
            }
        });
        let h = reg.snapshot().histogram("vals").unwrap();
        assert_eq!(h.count, 400);
        assert_eq!(h.sum, (0..400u64).sum::<u64>());
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 399);
        assert!((h.mean() - 199.5).abs() < 1e-9);
    }

    #[test]
    fn spans_nest_on_one_thread_and_count_calls() {
        let reg = Registry::new();
        {
            let _job = reg.span("job");
            for _ in 0..3 {
                let _phase = reg.span("map");
            }
            let explicit = reg.span("reduce");
            explicit.close();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.span_calls("job"), 1);
        assert_eq!(snap.span_calls("job/map"), 3);
        assert_eq!(snap.span_calls("job/reduce"), 1);
        assert_eq!(snap.span_calls("map"), 0, "child must not appear as root");
    }

    #[test]
    fn span_stacks_are_independent_per_registry() {
        let a = Registry::new();
        let b = Registry::new();
        let _outer = a.span("outer");
        let _other = b.span("other");
        let inner = a.span("inner");
        assert_eq!(inner.path(), "outer/inner", "b's span must not intrude");
    }

    #[test]
    fn json_export_is_deterministic_and_segregates_host_fields() {
        let build = || {
            let reg = Registry::new();
            reg.add("a.count", 3);
            reg.set_gauge("sim.us", 12.5);
            reg.record("h", 7);
            let s = reg.span("phase");
            s.close();
            reg.snapshot()
        };
        let one = build();
        let two = build();
        assert!(one.deterministic_eq(&two));
        let a = one.without_host().to_json();
        let b = two.without_host().to_json();
        assert_eq!(a, b, "deterministic sections must be byte-identical");
        // host wall times appear only under "host"
        let json = build().to_json();
        let host_at = json.find("\"host\"").expect("host subobject present");
        assert!(json.find("wall").unwrap() > host_at);
        assert!(json.contains("\"a.count\": 3"));
        assert!(json.contains("\"sim.us\": 12.500000"), "{json}");
        assert!(json.contains("\"phase\": 1"));
    }

    #[test]
    fn json_histograms_use_sorted_keys_and_percentiles() {
        let reg = Registry::new();
        for v in [1u64, 2, 3, 100] {
            reg.record("lat", v);
        }
        let json = reg.snapshot().to_json();
        assert!(
            json.contains(
                "\"lat\": {\"count\": 4, \"max\": 100, \"mean\": 26.500000, \
                 \"min\": 1, \"p50\": 3, \"p95\": 100, \"sum\": 106}"
            ),
            "{json}"
        );
    }

    #[test]
    fn json_meta_header_is_embedded_first() {
        let reg = Registry::new();
        reg.add("jobs", 1);
        let snap = reg.snapshot();
        let json = snap.to_json_with_meta(Some("{\"git_sha\": \"abc\"}"));
        let meta_at = json.find("\"meta\"").expect("meta key present");
        let counters_at = json.find("\"counters\"").unwrap();
        assert!(meta_at < counters_at, "meta must lead: {json}");
        assert!(json.contains("{\"git_sha\": \"abc\"}"));
        // without meta the layout is unchanged
        assert!(snap.to_json().starts_with("{\n  \"counters\""));
    }

    #[test]
    fn histogram_quantiles_estimate_from_log2_buckets() {
        let reg = Registry::new();
        for v in 1..=100u64 {
            reg.record("lat", v);
        }
        let h = reg.snapshot().histogram("lat").unwrap();
        // p50 of 1..=100 is 50; its bucket [32, 63] has upper edge 63
        assert_eq!(h.p50(), 63);
        // p99 lands in bucket [64, 127], clamped to the observed max
        assert_eq!(h.p99(), 100);
        assert_eq!(h.quantile(0.0), 1, "q=0 clamps to min");
        assert_eq!(h.quantile(1.0), 100, "q=1 clamps to max");

        let empty = Histogram::new().stats();
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.p99(), 0);

        let single = Registry::new();
        single.record("one", 42);
        let h = single.snapshot().histogram("one").unwrap();
        assert_eq!(h.p50(), 42, "single-valued histogram is exact");
        assert_eq!(h.p99(), 42);
    }

    #[test]
    fn text_report_shows_percentiles_and_sorts_spans_by_wall_time() {
        let reg = Registry::new();
        for v in [1u64, 2, 3, 100] {
            reg.record("lat", v);
        }
        reg.observe_span("cheap", 0.001);
        reg.observe_span("expensive", 2.5);
        let text = reg.snapshot().render_text();
        assert!(text.contains("p50="), "missing p50 column: {text}");
        assert!(text.contains("p99="), "missing p99 column: {text}");
        let expensive = text.find("expensive").unwrap();
        let cheap = text.find("cheap").unwrap();
        assert!(
            expensive < cheap,
            "spans must be sorted by total wall time, heaviest first: {text}"
        );
    }

    #[test]
    fn text_report_lists_everything() {
        let reg = Registry::new();
        reg.add("jobs", 2);
        reg.record("pivots", 10);
        let s = reg.span("solve");
        s.close();
        let text = reg.snapshot().render_text();
        assert!(text.contains("jobs"));
        assert!(text.contains("pivots"));
        assert!(text.contains("solve"));
        assert!(text.contains("calls=1"));
    }
}
