//! Per-task trace events for the simulated cluster.
//!
//! A [`TraceSink`] collects one [`JobTrace`] per executed MapReduce job:
//! the job's name, its per-task [`TraceEvent`]s (map, combine,
//! shuffle-transfer and reduce tasks, including failed attempts under
//! failure injection) with *simulated* start times and durations in
//! microseconds, and the job's makespan. Because task start times are
//! derived from the deterministic serial-per-machine scheduling model,
//! the trace **is** the schedule — summing durations along the bounding
//! chain reproduces the makespan, and downstream analysis (critical
//! path, skew, stragglers) needs no extra bookkeeping.
//!
//! # Determinism contract
//!
//! Events are assembled by the cluster's driver thread in the serial
//! accounting sections — the parallel map/reduce workers never touch the
//! sink — and are batch-appended once per job, so the collected stream
//! is independent of host thread interleaving. Within a job, events are
//! sorted by `(phase, machine, task, attempt)`; jobs are ordered by
//! execution. Event *durations* are pure functions of the job seed
//! whenever the cost model's `cpu_slowdown` is zero (the measured-CPU
//! term is the only host-dependent input); the Chrome-trace export is
//! then byte-reproducible.
//!
//! # Viewing a trace
//!
//! [`TraceSink::chrome_trace_json`] renders the standard trace-event
//! format: load the file in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`. Each job appears as a process track, each
//! simulated machine as a thread track, with a `driver` row carrying the
//! per-job setup overhead. The clock is simulated microseconds.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// The phase a traced task belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TracePhase {
    /// A map task (one per input split).
    Map,
    /// A combiner run inside a map task.
    Combine,
    /// A shuffle transfer (one per reduce partition).
    Shuffle,
    /// A reduce task (one per partition).
    Reduce,
}

impl TracePhase {
    /// Lower-case phase name, as used in exports.
    pub fn as_str(&self) -> &'static str {
        match self {
            TracePhase::Map => "map",
            TracePhase::Combine => "combine",
            TracePhase::Shuffle => "shuffle",
            TracePhase::Reduce => "reduce",
        }
    }
}

/// One scheduled task (or task attempt) of a job.
///
/// `start_us` is relative to the owning job's start; the
/// [`JobTrace::start_us`] offset places the job on the series timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Phase of the task.
    pub phase: TracePhase,
    /// Task id: input-split id (map/combine) or partition id
    /// (shuffle/reduce).
    pub task: u64,
    /// Machine executing the task (shuffle: destination machine).
    pub machine: u64,
    /// Reduce partition, for shuffle and reduce events.
    pub partition: Option<u64>,
    /// Attempt number; retried attempts come first, the successful
    /// attempt is the highest.
    pub attempt: u32,
    /// True for an attempt that did not produce the task's output: a
    /// failed (retried) attempt, an attempt killed by a node crash, or
    /// the losing half of a speculative pair.
    pub failed: bool,
    /// True for a speculative backup attempt (launched against a
    /// straggling primary; first finisher wins).
    pub speculative: bool,
    /// Simulated start, µs since the job started.
    pub start_us: f64,
    /// Simulated duration, µs (already scaled by the machine's slowness
    /// factor).
    pub dur_us: f64,
    /// Records processed (map: input records; combine: pairs consumed;
    /// shuffle: pairs transferred; reduce: values consumed).
    pub records: u64,
    /// Bytes involved (map: bytes scanned; shuffle/reduce: partition
    /// bytes).
    pub bytes: u64,
}

/// The full trace of one executed job.
#[derive(Clone, Debug, PartialEq)]
pub struct JobTrace {
    /// Job name (e.g. `sqe`, `cps/residual#0`); `job` when unnamed.
    pub name: String,
    /// Execution index within the sink (0-based).
    pub seq: u64,
    /// Start offset on the series timeline (jobs run back to back), µs.
    pub start_us: f64,
    /// Per-job setup overhead charged before the first map task, µs.
    pub overhead_us: f64,
    /// Simulated critical-path time of the job, µs (including
    /// `overhead_us`).
    pub makespan_us: f64,
    /// Number of machines in the simulated cluster.
    pub machines: u64,
    /// Events sorted by `(phase, machine, task, attempt)`.
    pub events: Vec<TraceEvent>,
}

impl JobTrace {
    /// Iterate the events of one phase.
    pub fn phase_events(&self, phase: TracePhase) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.phase == phase)
    }
}

/// A shared sink of per-job traces.
///
/// Cloning is cheap; clones share the same store. The cluster appends
/// one fully-assembled [`JobTrace`] per job from its driver thread, so
/// the sink's lock is taken once per job, never inside the parallel
/// sections.
#[derive(Clone, Default)]
pub struct TraceSink {
    inner: Arc<Mutex<Vec<JobTrace>>>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("jobs", &self.len())
            .finish()
    }
}

impl TraceSink {
    /// Create an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one job's trace. The sink assigns the job its sequence
    /// number and its start offset on the series timeline (directly
    /// after the previous job). Returns the sequence number.
    pub fn record_job(
        &self,
        name: &str,
        overhead_us: f64,
        makespan_us: f64,
        machines: u64,
        events: Vec<TraceEvent>,
    ) -> u64 {
        let mut jobs = self.inner.lock().unwrap();
        let seq = jobs.len() as u64;
        let start_us = jobs
            .last()
            .map(|j| j.start_us + j.makespan_us)
            .unwrap_or(0.0);
        jobs.push(JobTrace {
            name: name.to_string(),
            seq,
            start_us,
            overhead_us,
            makespan_us,
            machines,
            events,
        });
        seq
    }

    /// Copy out every recorded job trace, in execution order.
    pub fn jobs(&self) -> Vec<JobTrace> {
        self.inner.lock().unwrap().clone()
    }

    /// Number of recorded jobs.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// True when no job has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// End-to-end simulated time of the recorded series, µs.
    pub fn total_makespan_us(&self) -> f64 {
        self.inner
            .lock()
            .unwrap()
            .iter()
            .map(|j| j.makespan_us)
            .sum()
    }

    /// Render the whole sink in the Chrome trace-event JSON format
    /// (loadable in Perfetto / `chrome://tracing`).
    ///
    /// Layout: one *process* per job (pid = sequence number, named after
    /// the job), one *thread* per simulated machine plus a `driver` row
    /// carrying the job-setup slice; `ts`/`dur` are simulated
    /// microseconds on the series timeline, so the export is
    /// byte-reproducible whenever the event durations are (see the
    /// module docs).
    pub fn chrome_trace_json(&self) -> String {
        self.chrome_trace_json_with_meta(None)
    }

    /// [`TraceSink::chrome_trace_json`] with a caller-supplied `meta`
    /// header as the first top-level key. The trace-event format
    /// tolerates extra top-level keys, so the file stays
    /// Perfetto-loadable. `meta_json` must be a pre-rendered,
    /// single-line JSON value; it is embedded verbatim.
    pub fn chrome_trace_json_with_meta(&self, meta_json: Option<&str>) -> String {
        let jobs = self.inner.lock().unwrap();
        let mut out = String::from("{\n");
        if let Some(meta) = meta_json {
            let _ = writeln!(out, "\"meta\": {meta},");
        }
        out.push_str("\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
        let mut first = true;
        let push = |out: &mut String, line: &str, first: &mut bool| {
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
            out.push_str(line);
        };
        for job in jobs.iter() {
            let pid = job.seq;
            push(
                &mut out,
                &format!(
                    "{{\"ph\": \"M\", \"pid\": {pid}, \"name\": \"process_name\", \
                     \"args\": {{\"name\": {:?}}}}}",
                    format!("#{pid} {}", job.name)
                ),
                &mut first,
            );
            for m in 0..job.machines {
                push(
                    &mut out,
                    &format!(
                        "{{\"ph\": \"M\", \"pid\": {pid}, \"tid\": {m}, \
                         \"name\": \"thread_name\", \"args\": {{\"name\": \"machine {m}\"}}}}",
                    ),
                    &mut first,
                );
            }
            let driver_tid = job.machines;
            push(
                &mut out,
                &format!(
                    "{{\"ph\": \"M\", \"pid\": {pid}, \"tid\": {driver_tid}, \
                     \"name\": \"thread_name\", \"args\": {{\"name\": \"driver\"}}}}",
                ),
                &mut first,
            );
            let mut slice = String::new();
            let _ = write!(
                slice,
                "{{\"ph\": \"X\", \"pid\": {pid}, \"tid\": {driver_tid}, \
                 \"name\": \"job setup\", \"cat\": \"setup\", \"ts\": ",
            );
            write_us(&mut slice, job.start_us);
            slice.push_str(", \"dur\": ");
            write_us(&mut slice, job.overhead_us);
            slice.push_str(", \"args\": {}}");
            push(&mut out, &slice, &mut first);
            for e in &job.events {
                let mut line = String::new();
                let name = match (e.failed, e.speculative) {
                    (true, true) => {
                        format!("{} {} spec-kill#{}", e.phase.as_str(), e.task, e.attempt)
                    }
                    (true, false) => {
                        format!("{} {} retry#{}", e.phase.as_str(), e.task, e.attempt)
                    }
                    (false, true) => {
                        format!("{} {} spec-win#{}", e.phase.as_str(), e.task, e.attempt)
                    }
                    (false, false) => format!("{} {}", e.phase.as_str(), e.task),
                };
                let _ = write!(
                    line,
                    "{{\"ph\": \"X\", \"pid\": {pid}, \"tid\": {}, \"name\": {name:?}, \
                     \"cat\": \"{}\", \"ts\": ",
                    e.machine,
                    e.phase.as_str(),
                );
                write_us(&mut line, job.start_us + e.start_us);
                line.push_str(", \"dur\": ");
                write_us(&mut line, e.dur_us);
                let _ = write!(
                    line,
                    ", \"args\": {{\"task\": {}, \"attempt\": {}, \"records\": {}, \"bytes\": {}",
                    e.task, e.attempt, e.records, e.bytes
                );
                if let Some(p) = e.partition {
                    let _ = write!(line, ", \"partition\": {p}");
                }
                if e.speculative {
                    line.push_str(", \"speculative\": true");
                }
                line.push_str("}}");
                push(&mut out, &line, &mut first);
            }
        }
        out.push_str("\n]\n}\n");
        out
    }
}

/// Write a simulated-µs value as a JSON number (finite; `null` guards
/// against accidental NaN/inf so the export always parses).
fn write_us(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(phase: TracePhase, machine: u64, task: u64, start: f64, dur: f64) -> TraceEvent {
        TraceEvent {
            phase,
            task,
            machine,
            partition: None,
            attempt: 0,
            failed: false,
            speculative: false,
            start_us: start,
            dur_us: dur,
            records: 1,
            bytes: 2,
        }
    }

    #[test]
    fn jobs_lay_out_back_to_back() {
        let sink = TraceSink::new();
        assert!(sink.is_empty());
        sink.record_job("a", 5.0, 100.0, 2, vec![]);
        sink.record_job("b", 5.0, 50.0, 2, vec![]);
        let jobs = sink.jobs();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].start_us, 0.0);
        assert_eq!(jobs[1].start_us, 100.0);
        assert_eq!(jobs[1].seq, 1);
        assert_eq!(sink.total_makespan_us(), 150.0);
    }

    #[test]
    fn chrome_export_contains_metadata_and_slices() {
        let sink = TraceSink::new();
        sink.record_job(
            "wordcount",
            5.0,
            30.0,
            2,
            vec![
                event(TracePhase::Map, 0, 0, 5.0, 10.0),
                event(TracePhase::Reduce, 1, 0, 20.0, 10.0),
            ],
        );
        let json = sink.chrome_trace_json();
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("#0 wordcount"));
        assert!(json.contains("\"machine 1\""));
        assert!(json.contains("\"driver\""));
        assert!(json.contains("\"job setup\""));
        assert!(json.contains("\"map 0\""));
        assert!(json.contains("\"reduce 0\""));
        // second job's slices are offset by the first's makespan
        sink.record_job(
            "second",
            5.0,
            10.0,
            1,
            vec![event(TracePhase::Map, 0, 0, 5.0, 1.0)],
        );
        let json = sink.chrome_trace_json();
        assert!(json.contains("\"ts\": 35"), "offset start missing: {json}");
    }

    #[test]
    fn clones_share_the_store() {
        let sink = TraceSink::new();
        let clone = sink.clone();
        clone.record_job("j", 0.0, 1.0, 1, vec![]);
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn meta_header_leads_the_chrome_export() {
        let sink = TraceSink::new();
        sink.record_job("j", 0.0, 1.0, 1, vec![]);
        let json = sink.chrome_trace_json_with_meta(Some("{\"seed\": 7}"));
        assert!(json.starts_with("{\n\"meta\": {\"seed\": 7},\n"), "{json}");
        assert!(json.contains("\"displayTimeUnit\""));
        // plain export is unchanged
        assert!(sink
            .chrome_trace_json()
            .starts_with("{\n\"displayTimeUnit\""));
    }

    #[test]
    fn retry_slices_are_labeled() {
        let sink = TraceSink::new();
        let mut e = event(TracePhase::Map, 0, 3, 0.0, 1.0);
        e.failed = true;
        e.attempt = 0;
        sink.record_job("j", 0.0, 1.0, 1, vec![e]);
        assert!(sink.chrome_trace_json().contains("map 3 retry#0"));
    }

    #[test]
    fn speculative_slices_are_labeled() {
        let sink = TraceSink::new();
        let mut win = event(TracePhase::Map, 1, 3, 0.0, 1.0);
        win.speculative = true;
        win.attempt = 1;
        let mut kill = event(TracePhase::Map, 0, 4, 0.0, 1.0);
        kill.speculative = true;
        kill.failed = true;
        sink.record_job("j", 0.0, 1.0, 2, vec![win, kill]);
        let json = sink.chrome_trace_json();
        assert!(json.contains("map 3 spec-win#1"), "{json}");
        assert!(json.contains("map 4 spec-kill#0"), "{json}");
        assert!(json.contains("\"speculative\": true"), "{json}");
    }
}
